/// \file test_alloc_free.cpp
/// The allocation-counting hook of the acceptance criteria: once warm (spare
/// pools populated, per-thread Workspace consolidated, result capacity in
/// place), the per-step loops of the incremental filter, the Paige-Saunders
/// sweep and the associative scans perform ZERO heap allocations, as counted
/// by la::aligned_alloc_count() — every Matrix/Vector/Workspace buffer in the
/// library draws from the counted allocator.
///
/// The assertions use a serial pool: the parallel scan additionally copies
/// one chunk seed per `grain` elements (amortized, documented), which is a
/// scheduling cost, not a per-step one.

#include <gtest/gtest.h>

#include <filesystem>

#include "core/associative.hpp"
#include "core/filter.hpp"
#include "core/oddeven.hpp"
#include "core/paige_saunders.hpp"
#include "core/selinv.hpp"
#include "engine/durable.hpp"
#include "engine/engine.hpp"
#include "engine/session.hpp"
#include "io/session_store.hpp"
#include "la/workspace.hpp"
#include "obs/trace.hpp"
#include "test_util.hpp"

namespace pitk::kalman {
namespace {

using la::aligned_alloc_count;
using la::Rng;
using test::CommonProblem;

/// Consolidate the calling thread's arena so the measured region cannot be
/// charged for chunk growth triggered during warmup.
void settle_workspace() { la::tls_workspace().reset(); }

TEST(AllocFree, PaigeSaundersFactorAndSolveIntoWarmStorage) {
  Rng rng(0xA110C);
  CommonProblem cp = test::common_problem(rng, 5, 60, /*dense_cov=*/true);

  BidiagonalFactor f;
  std::vector<Vector> u;
  paige_saunders_factor_into(cp.for_qr, f);  // warmup: allocates capacity
  paige_saunders_solve_into(f, u);
  settle_workspace();

  const std::uint64_t before = aligned_alloc_count();
  paige_saunders_factor_into(cp.for_qr, f);
  paige_saunders_solve_into(f, u);
  EXPECT_EQ(aligned_alloc_count() - before, 0u)
      << "warm Paige-Saunders sweep must not touch the heap";

  // The warm pass must still produce the same factor/solution.
  BidiagonalFactor fresh = paige_saunders_factor(cp.for_qr);
  for (std::size_t i = 0; i < fresh.diag.size(); ++i)
    test::expect_near(f.diag[i].view(), fresh.diag[i].view(), 0.0, "warm refactor diag");
}

/// Per-step streaming inputs for one track, built outside the measured
/// region; evolve/observe consume them by move.
struct TrackInputs {
  std::vector<Matrix> F;
  std::vector<Vector> c;
  std::vector<CovFactor> K;
  std::vector<Matrix> G;
  std::vector<Vector> o;
  std::vector<CovFactor> L;
};

TrackInputs make_track(Rng& rng, la::index n, la::index k) {
  TrackInputs t;
  for (la::index i = 0; i < k; ++i) {
    t.F.push_back(la::random_orthonormal(rng, n));
    t.c.push_back(la::random_gaussian_vector(rng, n));
    t.K.push_back(CovFactor::scaled_identity(n, 0.5));
    t.G.push_back(la::random_orthonormal(rng, n));
    t.o.push_back(la::random_gaussian_vector(rng, n));
    t.L.push_back(CovFactor::scaled_identity(n, 0.25));
  }
  return t;
}

void run_track(IncrementalFilter& filt, TrackInputs& t) {
  const la::index k = static_cast<la::index>(t.F.size());
  for (la::index i = 0; i < k; ++i) {
    filt.observe(std::move(t.G[static_cast<std::size_t>(i)]),
                 std::move(t.o[static_cast<std::size_t>(i)]),
                 std::move(t.L[static_cast<std::size_t>(i)]));
    filt.evolve(std::move(t.F[static_cast<std::size_t>(i)]),
                std::move(t.c[static_cast<std::size_t>(i)]),
                std::move(t.K[static_cast<std::size_t>(i)]));
  }
}

TEST(AllocFree, IncrementalFilterStepsAfterReset) {
  Rng rng(0xA110C + 1);
  const la::index n = 4;
  const la::index k = 50;
  IncrementalFilter filt(n);
  TrackInputs warm = make_track(rng, n, k);
  run_track(filt, warm);  // warmup track populates the spare pools

  filt.reset(n);
  TrackInputs second = make_track(rng, n, k);  // inputs built before counting
  settle_workspace();

  const std::uint64_t before = aligned_alloc_count();
  run_track(filt, second);
  EXPECT_EQ(aligned_alloc_count() - before, 0u)
      << "warm evolve/observe steps must not touch the heap";

  // The recycled track still smooths correctly (sanity, not timing).
  SmootherResult res = filt.smooth(/*with_covariances=*/false);
  EXPECT_EQ(static_cast<la::index>(res.means.size()), filt.current_step() + 1);
  for (const Vector& m : res.means) EXPECT_TRUE(la::norm_max(m.span()) < 1e6);
}

TEST(AllocFree, AssociativeScansWithWarmScratch) {
  Rng rng(0xA110C + 2);
  CommonProblem cp = test::common_problem(rng, 4, 80, /*dense_cov=*/true);
  par::ThreadPool pool(1);  // serial: no chunk-seed copies

  AssociativeScratch scratch;
  AssociativeOptions opts;
  opts.scratch = &scratch;
  associative_scan(cp.for_conventional, cp.prior, pool, opts, scratch, /*with_smooth=*/true);
  settle_workspace();

  const std::uint64_t before = aligned_alloc_count();
  associative_scan(cp.for_conventional, cp.prior, pool, opts, scratch, /*with_smooth=*/true);
  EXPECT_EQ(aligned_alloc_count() - before, 0u)
      << "warm associative scans must not touch the heap";

  // Scratch-reusing solve agrees with the scratch-free one.
  SmootherResult with_scratch = associative_smooth(cp.for_conventional, cp.prior, pool, opts);
  SmootherResult plain = associative_smooth(cp.for_conventional, cp.prior, pool, {});
  test::expect_means_near(with_scratch.means, plain.means, 1e-12, "scratch vs plain means");
}

TEST(AllocFree, AssociativeSmoothIntoWarmStorage) {
  // The ROADMAP PR-3 follow-up: result extraction used to copy into freshly
  // allocated vectors; associative_smooth_into writes straight into warm
  // caller storage, so the conventional-backend warm path — scans AND
  // extraction — is fully allocation-free.
  Rng rng(0xA110C + 8);
  CommonProblem cp = test::common_problem(rng, 4, 60, /*dense_cov=*/true);
  par::ThreadPool pool(1);  // serial: no chunk-seed copies

  AssociativeScratch scratch;
  AssociativeOptions opts;
  opts.scratch = &scratch;
  SmootherResult out;
  associative_smooth_into(cp.for_conventional, cp.prior, pool, opts, out);  // warmup
  settle_workspace();

  const std::uint64_t before = aligned_alloc_count();
  associative_smooth_into(cp.for_conventional, cp.prior, pool, opts, out);
  EXPECT_EQ(aligned_alloc_count() - before, 0u)
      << "warm associative smooth-into must not touch the heap";

  SmootherResult plain = associative_smooth(cp.for_conventional, cp.prior, pool, {});
  test::expect_means_near(out.means, plain.means, 1e-12, "into vs plain means");
  test::expect_covs_near(out.covariances, plain.covariances, 1e-12, "into vs plain covs");
}

TEST(AllocFree, EngineAssociativeJobOnWarmWorker) {
  // End-to-end: the associative backend through a warm serial engine worker
  // with into-storage performs zero counted allocations per job, like the
  // QR-family path already pinned below.
  Rng rng(0xA110C + 9);
  CommonProblem cp = test::common_problem(rng, 4, 40, /*dense_cov=*/true);

  engine::SmootherEngine eng({.threads = 1});
  engine::JobOptions jo;
  jo.backend = engine::Backend::Associative;
  jo.prior = cp.prior;
  kalman::SmootherResult storage;
  jo.into = &storage;

  kalman::Problem second = cp.for_conventional;  // built before counting
  engine::JobOptions jo2 = jo;                   // the prior copy, ditto
  eng.submit(cp.for_conventional, jo).get();     // warmup round
  settle_workspace();

  const std::uint64_t before = aligned_alloc_count();
  engine::JobResult jr = eng.submit(std::move(second), std::move(jo2)).get();
  EXPECT_EQ(aligned_alloc_count() - before, 0u)
      << "a warm associative engine job must not touch the heap";
  EXPECT_EQ(jr.metrics.allocations, 0u);
  EXPECT_EQ(jr.metrics.backend, engine::Backend::Associative);

  engine::JobOptions plain = jo;
  plain.into = nullptr;
  engine::JobResult value = eng.submit(cp.for_conventional, plain).get();
  test::expect_means_near(storage.means, value.result.means, 0.0, "into vs value means");
}

TEST(AllocFree, SelinvCovariancesIntoWarmStorage) {
  Rng rng(0xA110C + 4);
  CommonProblem cp = test::common_problem(rng, 5, 50, /*dense_cov=*/true);

  BidiagonalFactor f;
  paige_saunders_factor_into(cp.for_qr, f);
  std::vector<Matrix> cov;
  selinv_bidiagonal_into(f, cov);  // warmup: allocates block capacity
  settle_workspace();

  const std::uint64_t before = aligned_alloc_count();
  selinv_bidiagonal_into(f, cov);
  EXPECT_EQ(aligned_alloc_count() - before, 0u)
      << "warm SelInv covariance pass must not touch the heap";

  test::expect_covs_near(cov, selinv_bidiagonal(f), 0.0, "warm selinv vs fresh");
}

TEST(AllocFree, OddEvenSolveAndCovariancesWithWarmScratch) {
  Rng rng(0xA110C + 5);
  CommonProblem cp = test::common_problem(rng, 4, 70, /*dense_cov=*/true);
  par::ThreadPool pool(1);  // serial: no chunk-seed copies

  OddEvenFactor f = oddeven_factor(cp.for_qr, pool);
  OddEvenCovScratch scratch;
  std::vector<Vector> sol;
  std::vector<Matrix> cov;
  oddeven_solve_into(f, pool, par::default_grain, sol);  // warmup
  oddeven_covariances_into(f, pool, par::default_grain, scratch, cov);
  settle_workspace();

  const std::uint64_t before = aligned_alloc_count();
  oddeven_solve_into(f, pool, par::default_grain, sol);
  oddeven_covariances_into(f, pool, par::default_grain, scratch, cov);
  EXPECT_EQ(aligned_alloc_count() - before, 0u)
      << "warm odd-even solve + covariance replay must not touch the heap";

  test::expect_means_near(sol, oddeven_solve(f, pool), 0.0, "warm oddeven solve vs fresh");
  test::expect_covs_near(cov, oddeven_covariances(f, pool), 0.0, "warm oddeven cov vs fresh");
}

TEST(AllocFree, EngineBatchedJobsOnWarmWorker) {
  // The end-to-end criterion: N small same-shaped jobs through a warm engine
  // worker, solved into warm caller storage, perform ZERO matrix-buffer heap
  // allocations — factor and covariance state live in the worker's
  // SolverCache, transients in its Workspace arena, results in the reused
  // `into` storage.  A serial engine executes jobs inline on this thread, so
  // the global counter is exact.
  Rng rng(0xA110C + 6);
  const int jobs = 4;
  CommonProblem cp = test::common_problem(rng, 4, 40, /*dense_cov=*/true);

  engine::SmootherEngine eng({.threads = 1});
  std::vector<kalman::SmootherResult> storage(static_cast<std::size_t>(jobs));
  std::vector<kalman::Problem> first;
  std::vector<kalman::Problem> second;
  for (int j = 0; j < jobs; ++j) {
    first.push_back(cp.for_qr);
    second.push_back(cp.for_qr);
  }

  engine::JobOptions jo;
  for (int j = 0; j < jobs; ++j) {
    jo.into = &storage[static_cast<std::size_t>(j)];
    eng.submit(std::move(first[static_cast<std::size_t>(j)]), jo).get();  // warmup round
  }
  settle_workspace();

  const std::uint64_t before = aligned_alloc_count();
  std::vector<std::future<engine::JobResult>> futures;
  for (int j = 0; j < jobs; ++j) {
    jo.into = &storage[static_cast<std::size_t>(j)];
    futures.push_back(eng.submit(std::move(second[static_cast<std::size_t>(j)]), jo));
  }
  eng.wait_idle();
  EXPECT_EQ(aligned_alloc_count() - before, 0u)
      << "a warm engine worker must serve whole batched jobs without heap traffic";
  for (auto& fu : futures) {
    engine::JobResult jr = fu.get();
    EXPECT_EQ(jr.metrics.allocations, 0u) << "per-job metric must agree";
    EXPECT_EQ(jr.metrics.backend, engine::Backend::PaigeSaunders);
    EXPECT_TRUE(jr.result.means.empty()) << "into-jobs leave JobResult::result empty";
  }

  // The into-storage results match a plain value-returning solve.
  engine::JobResult plain = eng.submit(cp.for_qr, {}).get();
  for (int j = 0; j < jobs; ++j) {
    test::expect_means_near(storage[static_cast<std::size_t>(j)].means, plain.result.means,
                            0.0, "into vs value means");
    test::expect_covs_near(storage[static_cast<std::size_t>(j)].covariances,
                           plain.result.covariances, 0.0, "into vs value covs");
  }
}

TEST(AllocFree, SessionIncrementalResmoothOnWarmCache) {
  // The streaming serving pattern: a warm session re-smoothing after a new
  // measurement touches zero heap — the spliced factor, the QR scratch, the
  // cached result and the caller storage all reuse capacity; transients are
  // arena borrows.  (Appending *steps* grows the factor's block vectors, an
  // amortized cost excluded here by mutating only the live state.)
  Rng rng(0xA110C + 7);
  CommonProblem cp = test::common_problem(rng, 4, 48);

  engine::SmootherEngine eng({.threads = 1});
  engine::Session s = eng.open_session(4);
  for (la::index i = 0; i <= cp.for_qr.last_index(); ++i) {
    if (i > 0) {
      const Evolution& e = *cp.for_qr.step(i).evolution;
      s.evolve(e.F, e.c, e.noise);
    }
    if (cp.for_qr.step(i).observation) {
      const Observation& ob = *cp.for_qr.step(i).observation;
      s.observe(ob.G, ob.o, ob.noise);
    }
  }

  SmootherResult out;
  s.smooth_into(out, true);  // cold: builds factor, result and out storage
  s.observe(Matrix::identity(4), Vector({0.1, -0.2, 0.3, -0.4}), CovFactor::identity(4));
  s.smooth_into(out, true);  // second pass settles every capacity high-water
  settle_workspace();

  // A mutated session (cache miss: recompress + solve + SelInv + copy-out).
  Matrix g = Matrix::identity(4);
  Vector o({0.5, 0.25, -0.5, -0.25});
  CovFactor l = CovFactor::identity(4);
  s.observe(std::move(g), std::move(o), std::move(l));
  const std::uint64_t before_miss = aligned_alloc_count();
  s.smooth_into(out, true);
  EXPECT_EQ(aligned_alloc_count() - before_miss, 0u)
      << "a warm incremental re-smooth must not touch the heap";

  // An unmutated session (cache hit: served from the stored result).
  const std::uint64_t before_hit = aligned_alloc_count();
  s.smooth_into(out, true);
  EXPECT_EQ(aligned_alloc_count() - before_hit, 0u)
      << "a cached-result smooth must not touch the heap";

  // Alternating means-only and covariance re-smooths: the NC pass keeps the
  // cached covariance storage (gated by a flag, not by clearing), so the
  // covariance upgrade that follows reuses it instead of reallocating.
  SmootherResult nc;
  s.observe(Matrix::identity(4), Vector({0.2, 0.1, -0.2, -0.1}), CovFactor::identity(4));
  s.smooth_into(nc, false);
  settle_workspace();
  Matrix g2 = Matrix::identity(4);
  Vector o2({-0.3, 0.15, 0.3, -0.15});
  CovFactor l2 = CovFactor::identity(4);
  s.observe(std::move(g2), std::move(o2), std::move(l2));
  const std::uint64_t before_alt = aligned_alloc_count();
  s.smooth_into(nc, false);  // miss: means only, stale covariances retained
  s.smooth_into(out, true);  // covariance upgrade into the retained storage
  EXPECT_EQ(aligned_alloc_count() - before_alt, 0u)
      << "alternating NC/covariance re-smooths must stay allocation-free";
}

TEST(AllocFree, SessionTruncatedResmoothOnWarmCache) {
  // The PR-10 steady-state criterion: a warm re-smooth that the decay bound
  // truncates — delta back substitution, delta SelInv and the delta copy-out
  // — performs zero counted allocations.  Damped dynamics (F = 0.5 I, full
  // identity observations) make the bound provably fire.
  Rng rng(0xA110C + 13);
  const la::index n = 3;
  engine::SmootherEngine eng({.threads = 1});
  engine::Session s = eng.open_session(n);

  auto append = [&](bool first) {
    if (!first) {
      Matrix f = Matrix::identity(n);
      for (la::index q = 0; q < n; ++q) f(q, q) = 0.5;
      s.evolve(std::move(f), Vector(n), CovFactor::identity(n));
    }
    s.observe(Matrix::identity(n), la::random_gaussian_vector(rng, n),
              CovFactor::identity(n));
  };
  for (int i = 0; i < 120; ++i) append(i == 0);

  SmootherResult out;
  s.smooth_into(out, true);  // cold pass builds all capacity
  append(false);
  s.smooth_into(out, true);  // settles the per-append high-water
  const std::uint64_t warm_truncated = s.stats().truncated_resmooths;
  EXPECT_GT(warm_truncated, 0u) << "the damped track must truncate once warm";

  // An observe-only mutation built outside the measured region (evolving
  // would grow the factor's block vectors — the amortized append cost the
  // existing warm-resmooth test also excludes).
  Matrix g2 = Matrix::identity(n);
  Vector o2 = la::random_gaussian_vector(rng, n);
  CovFactor l2 = CovFactor::identity(n);
  settle_workspace();

  const std::uint64_t before = aligned_alloc_count();
  s.observe(std::move(g2), std::move(o2), std::move(l2));
  s.smooth_into(out, true);
  EXPECT_EQ(aligned_alloc_count() - before, 0u)
      << "a warm truncated re-smooth must not touch the heap";
  EXPECT_GT(s.stats().truncated_resmooths, warm_truncated)
      << "the measured pass must have taken the truncated path";
}

TEST(AllocFree, RecoveredSessionResmoothOnWarmCache) {
  // The PR-8 durability criterion: a session rebuilt by recover_all() serves
  // exactly like a live one — once its caches are warm, a re-smooth after a
  // new durable append performs zero counted allocations (the journal's own
  // staging buffers are plain byte vectors outside the counted allocator,
  // and they capacity-reuse too).
  Rng rng(0xA110C + 12);
  CommonProblem cp = test::common_problem(rng, 4, 48);

  io::DurabilityOptions dopts;
  dopts.dir = testing::TempDir() + "/pitk_alloc_free_store";
  dopts.compact_every = 0;  // replay the whole journal: the worst-case restore
  std::filesystem::remove_all(dopts.dir);
  io::SessionStore store(dopts);

  engine::SmootherEngine eng({.threads = 1});
  {
    engine::Session live = eng.open_durable_session(store, "warm", 4);
    for (la::index i = 0; i <= cp.for_qr.last_index(); ++i) {
      if (i > 0) {
        const Evolution& e = *cp.for_qr.step(i).evolution;
        live.evolve(e.F, e.c, e.noise);
      }
      if (cp.for_qr.step(i).observation) {
        const Observation& ob = *cp.for_qr.step(i).observation;
        live.observe(ob.G, ob.o, ob.noise);
      }
    }
  }  // "crash": the handle dies, the journal stays on disk

  engine::RecoveredSessions rec = eng.recover_all(store);
  ASSERT_EQ(rec.linear.size(), 1u) << (rec.failed.empty() ? "" : rec.failed[0].second);
  engine::Session& s = rec.linear[0].second;

  SmootherResult out;
  s.smooth_into(out, true);  // cold post-recovery rebuild
  s.observe(Matrix::identity(4), Vector({0.1, -0.2, 0.3, -0.4}), CovFactor::identity(4));
  s.smooth_into(out, true);  // settles every capacity high-water (incl. journal)
  settle_workspace();

  // Warm miss: a durable append (journaled!) followed by the incremental
  // re-smooth, all at zero counted allocations.
  Matrix g = Matrix::identity(4);
  Vector o({0.5, 0.25, -0.5, -0.25});
  CovFactor l = CovFactor::identity(4);
  const std::uint64_t before_miss = aligned_alloc_count();
  s.observe(std::move(g), std::move(o), std::move(l));
  s.smooth_into(out, true);
  EXPECT_EQ(aligned_alloc_count() - before_miss, 0u)
      << "a warm re-smooth of a recovered session must not touch the heap";

  // Warm hit: served from the rebuilt cached result.
  const std::uint64_t before_hit = aligned_alloc_count();
  s.smooth_into(out, true);
  EXPECT_EQ(aligned_alloc_count() - before_hit, 0u)
      << "a cached-result smooth of a recovered session must not touch the heap";
}

TEST(AllocFree, EngineJobStaysAllocFreeWithTracingEnabled) {
  // The PR-6 observability criterion: metrics recording is always-on relaxed
  // atomics and spans go to a preallocated per-thread ring, so a warm engine
  // job stays at ZERO counted allocations even with tracing switched on.
  // Tracing is enabled before the warmup job so this thread's ring (a plain
  // uncounted `new`, once per thread) exists before counting starts.
  Rng rng(0xA110C + 10);
  CommonProblem cp = test::common_problem(rng, 4, 40, /*dense_cov=*/true);

  obs::trace::set_enabled(true);
  engine::SmootherEngine eng({.threads = 1});
  engine::JobOptions jo;
  kalman::SmootherResult storage;
  jo.into = &storage;

  kalman::Problem second = cp.for_qr;  // built before counting
  engine::JobOptions jo2 = jo;
  eng.submit(cp.for_qr, jo).get();  // warmup: worker cache + trace ring warm
  settle_workspace();

  const std::uint64_t before = aligned_alloc_count();
  engine::JobResult jr = eng.submit(std::move(second), std::move(jo2)).get();
  EXPECT_EQ(aligned_alloc_count() - before, 0u)
      << "a warm engine job with tracing on must not touch the counted heap";
  EXPECT_EQ(jr.metrics.allocations, 0u);

  obs::trace::set_enabled(false);
  EXPECT_GT(obs::trace::event_count(), 0u) << "the traced jobs recorded spans";
  obs::trace::clear();
}

TEST(AllocFree, EngineJobWithDeadlineAndCancelTokenStaysAllocFree) {
  // The PR-7 robustness criterion: with fault sites disarmed, the deadline/
  // cancellation machinery costs the warm path nothing — resolving the
  // timeout, installing the thread-local JobControl and running the stage
  // checkpoints touch zero counted allocations.
  Rng rng(0xA110C + 11);
  CommonProblem cp = test::common_problem(rng, 4, 40, /*dense_cov=*/true);

  engine::SmootherEngine eng({.threads = 1});
  engine::JobOptions jo;
  kalman::SmootherResult storage;
  jo.into = &storage;
  jo.timeout = std::chrono::duration<double>(60.0);  // armed but never fires
  jo.cancel = std::make_shared<engine::CancelToken>();  // allocated up front

  kalman::Problem second = cp.for_qr;  // built before counting
  engine::JobOptions jo2 = jo;
  eng.submit(cp.for_qr, jo).get();  // warmup round
  settle_workspace();

  const std::uint64_t before = aligned_alloc_count();
  engine::JobResult jr = eng.submit(std::move(second), std::move(jo2)).get();
  EXPECT_EQ(aligned_alloc_count() - before, 0u)
      << "a warm engine job with a live deadline must not touch the counted heap";
  EXPECT_EQ(jr.metrics.allocations, 0u);
  EXPECT_EQ(jr.metrics.backend, engine::Backend::PaigeSaunders);
}

TEST(AllocFree, WorkspaceHighWaterIsBoundedAcrossRepeats) {
  // Regression guard: repeated warm solves must not keep growing the arena
  // (a leaked Scope or runaway borrow would).
  Rng rng(0xA110C + 3);
  CommonProblem cp = test::common_problem(rng, 4, 40);
  BidiagonalFactor f;
  paige_saunders_factor_into(cp.for_qr, f);
  const std::size_t high = la::tls_workspace().high_water();
  for (int rep = 0; rep < 5; ++rep) paige_saunders_factor_into(cp.for_qr, f);
  EXPECT_EQ(la::tls_workspace().high_water(), high);
}

}  // namespace
}  // namespace pitk::kalman
