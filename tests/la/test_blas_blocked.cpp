/// \file test_blas_blocked.cpp
/// Randomized equivalence of the blocked/packed kernels against the naive
/// references across shapes that straddle every dispatch boundary (small-dim
/// <= 8, register tiles 8x4, triangular diagonal blocks of 8), all
/// Trans/Uplo/Diag combinations, and strided views with ld > rows.  Also the
/// BLAS NaN-propagation semantics the old zero-skip shortcut violated.

#include "la/blas.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "la/blas_ref.hpp"
#include "la/random.hpp"
#include "test_util.hpp"

namespace pitk::la {
namespace {

using test::expect_near;

/// All dimensions the randomized sweeps use: every size 1..17 (crossing the
/// small-dim cutoff at 8 and the first triangular block boundary), plus a few
/// larger sizes that exercise multiple MR/NR tiles and KC slabs.
const std::vector<index> kDims = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17};
const std::vector<index> kBigDims = {31, 48, 70};

/// A (rows x cols) view with ld = rows + pad carved out of a taller parent.
struct Strided {
  Matrix parent;
  MatrixView view;
};

Strided strided_copy(Rng& rng, ConstMatrixView src, index pad) {
  Strided s;
  s.parent = random_gaussian(rng, src.rows() + pad, src.cols());
  s.view = s.parent.view().block(0, 0, src.rows(), src.cols());
  s.view.assign(src);
  return s;
}

TEST(BlasBlocked, GemmMatchesReferenceAcrossShapesAndTrans) {
  Rng rng(0xB10C);
  for (index m : kDims)
    for (index n : kDims)
      for (index p : {index{1}, index{3}, index{8}, index{9}, index{16}}) {
        for (Trans ta : {Trans::No, Trans::Yes})
          for (Trans tb : {Trans::No, Trans::Yes}) {
            Matrix a = ta == Trans::No ? random_gaussian(rng, m, p) : random_gaussian(rng, p, m);
            Matrix b = tb == Trans::No ? random_gaussian(rng, p, n) : random_gaussian(rng, n, p);
            Matrix c = random_gaussian(rng, m, n);
            Matrix expected = c;
            ref::gemm(1.3, a.view(), ta, b.view(), tb, -0.7, expected.view());
            gemm(1.3, a.view(), ta, b.view(), tb, -0.7, c.view());
            expect_near(c.view(), expected.view(), 1e-12 * static_cast<double>(p + 1), "gemm");
          }
      }
}

TEST(BlasBlocked, GemmLargeShapesCrossBlockBoundaries) {
  Rng rng(0xB10C + 1);
  for (index m : kBigDims)
    for (index n : {index{5}, index{48}, index{70}})
      for (index p : {index{8}, index{48}, index{70}}) {
        Matrix a = random_gaussian(rng, m, p);
        Matrix b = random_gaussian(rng, p, n);
        Matrix c = random_gaussian(rng, m, n);
        Matrix expected = c;
        ref::gemm(0.9, a.view(), Trans::No, b.view(), Trans::No, 1.0, expected.view());
        gemm(0.9, a.view(), Trans::No, b.view(), Trans::No, 1.0, c.view());
        expect_near(c.view(), expected.view(), 1e-11, "gemm large");
      }
}

TEST(BlasBlocked, GemmStridedViewsLdGreaterThanRows) {
  Rng rng(0xB10C + 2);
  for (index m : {index{3}, index{7}, index{13}, index{33}})
    for (Trans ta : {Trans::No, Trans::Yes})
      for (Trans tb : {Trans::No, Trans::Yes}) {
        const index p = m + 2;
        const index n = m + 1;
        Matrix a_sq = ta == Trans::No ? random_gaussian(rng, m, p) : random_gaussian(rng, p, m);
        Matrix b_sq = tb == Trans::No ? random_gaussian(rng, p, n) : random_gaussian(rng, n, p);
        Matrix c_sq = random_gaussian(rng, m, n);
        Strided a = strided_copy(rng, a_sq.view(), 3);
        Strided b = strided_copy(rng, b_sq.view(), 5);
        Strided c = strided_copy(rng, c_sq.view(), 2);
        Matrix expected = c_sq;
        ref::gemm(2.0, a_sq.view(), ta, b_sq.view(), tb, 0.5, expected.view());
        gemm(2.0, a.view, ta, b.view, tb, 0.5, c.view);
        expect_near(c.view, expected.view(), 1e-12 * static_cast<double>(p + 1), "gemm strided");
        // Padding rows of the parent must be untouched.
        for (index j = 0; j < c.view.cols(); ++j)
          for (index i = c.view.rows(); i < c.parent.rows(); ++i)
            EXPECT_EQ(c.parent(i, j), c.parent(i, j));  // still finite, no assert trip
      }
}

TEST(BlasBlocked, ForcedPathsAgree) {
  Rng rng(0xB10C + 3);
  for (index n : {index{2}, index{5}, index{8}}) {
    Matrix a = random_gaussian(rng, n, n);
    Matrix b = random_gaussian(rng, n, n);
    Matrix c0 = random_gaussian(rng, n, n);
    Matrix c_small = c0;
    Matrix c_packed = c0;
    detail::gemm_small(1.0, a.view(), Trans::No, b.view(), Trans::No, 0.3, c_small.view());
    detail::gemm_packed(1.0, a.view(), Trans::No, b.view(), Trans::No, 0.3, c_packed.view());
    expect_near(c_small.view(), c_packed.view(), 1e-12, "small vs packed");
  }
}

TEST(BlasBlocked, GemmNanPropagatesEvenAgainstZeros) {
  // alpha * op(A) * op(B) must evaluate the product: NaN times an exact zero
  // in the other operand is NaN, so a NaN anywhere in a used row/column
  // poisons the result even when B is entirely zero.  The old axpy kernel
  // skipped zero multipliers and silently dropped the NaN.
  for (auto force : {+detail::gemm_small, +detail::gemm_packed}) {
    Matrix a = Matrix::identity(4);
    a(2, 1) = std::nan("");
    Matrix b(4, 4);  // all zeros
    Matrix c = Matrix::identity(4);
    force(1.0, a.view(), Trans::No, b.view(), Trans::No, 1.0, c.view());
    // Row 2 of A carries the NaN; every entry of row 2 of A*B is NaN.
    for (index j = 0; j < 4; ++j) EXPECT_TRUE(std::isnan(c(2, j))) << j;
    // Rows untouched by the NaN keep beta * C exactly.
    EXPECT_EQ(c(0, 0), 1.0);
    EXPECT_EQ(c(3, 3), 1.0);
  }
  // Infinities follow the same rule (Inf * 0 = NaN).
  Matrix a = Matrix::identity(3);
  a(0, 0) = std::numeric_limits<double>::infinity();
  Matrix b(3, 3);
  Matrix c(3, 3);
  gemm(1.0, a.view(), Trans::No, b.view(), Trans::No, 0.0, c.view());
  EXPECT_TRUE(std::isnan(c(0, 0)));
}

TEST(BlasBlocked, GemmBetaZeroOverwritesNanInC) {
  // beta == 0 means C is not read: a NaN already in C must be overwritten.
  Matrix a = Matrix::identity(5);
  Matrix b = Matrix::identity(5);
  Matrix c(5, 5);
  c(1, 1) = std::nan("");
  gemm(1.0, a.view(), Trans::No, b.view(), Trans::No, 0.0, c.view());
  expect_near(c.view(), Matrix::identity(5).view(), 0.0, "beta=0 overwrite");
}

TEST(BlasBlocked, TrsmLeftAllOrientations) {
  Rng rng(0xB10C + 4);
  for (index n : kDims)
    for (index cols : {index{1}, index{3}, index{11}})
      for (Uplo uplo : {Uplo::Upper, Uplo::Lower})
        for (Trans trans : {Trans::No, Trans::Yes})
          for (Diag diag : {Diag::NonUnit, Diag::Unit}) {
            Matrix t = random_gaussian(rng, n, n);
            for (index i = 0; i < n; ++i) t(i, i) = 2.0 + std::abs(t(i, i));
            Matrix b0 = random_gaussian(rng, n, cols);
            Strided b = strided_copy(rng, b0.view(), 4);
            trsm_left(uplo, trans, diag, t.view(), b.view);
            // Verify op(T) * X = B against the dense reference product.
            Matrix dense = ref::dense_triangle(t.view(), uplo, diag);
            Matrix back(n, cols);
            ref::gemm(1.0, dense.view(), trans, b.view, Trans::No, 0.0, back.view());
            expect_near(back.view(), b0.view(), 1e-9, "trsm_left");
          }
}

TEST(BlasBlocked, TrsmRightAllOrientations) {
  Rng rng(0xB10C + 5);
  for (index n : kDims)
    for (index rows : {index{1}, index{3}, index{11}})
      for (Uplo uplo : {Uplo::Upper, Uplo::Lower})
        for (Trans trans : {Trans::No, Trans::Yes})
          for (Diag diag : {Diag::NonUnit, Diag::Unit}) {
            Matrix t = random_gaussian(rng, n, n);
            for (index i = 0; i < n; ++i) t(i, i) = 2.0 + std::abs(t(i, i));
            Matrix b0 = random_gaussian(rng, rows, n);
            Strided b = strided_copy(rng, b0.view(), 2);
            trsm_right(uplo, trans, diag, t.view(), b.view);
            // Verify X * op(T) = B.
            Matrix dense = ref::dense_triangle(t.view(), uplo, diag);
            Matrix back(rows, n);
            ref::gemm(1.0, b.view, Trans::No, dense.view(), trans, 0.0, back.view());
            expect_near(back.view(), b0.view(), 1e-9, "trsm_right");
          }
}

TEST(BlasBlocked, TrmmLeftAllOrientations) {
  Rng rng(0xB10C + 6);
  for (index n : kDims)
    for (index cols : {index{1}, index{3}, index{11}})
      for (Uplo uplo : {Uplo::Upper, Uplo::Lower})
        for (Trans trans : {Trans::No, Trans::Yes})
          for (Diag diag : {Diag::NonUnit, Diag::Unit}) {
            Matrix t = random_gaussian(rng, n, n);
            Matrix b0 = random_gaussian(rng, n, cols);
            Strided b = strided_copy(rng, b0.view(), 3);
            trmm_left(uplo, trans, diag, 1.4, t.view(), b.view);
            Matrix dense = ref::dense_triangle(t.view(), uplo, diag);
            Matrix expected(n, cols);
            ref::gemm(1.4, dense.view(), trans, b0.view(), Trans::No, 0.0, expected.view());
            expect_near(b.view, expected.view(), 1e-10, "trmm_left");
          }
}

TEST(BlasBlocked, SyrkMatchesReferenceAndIsExactlySymmetric) {
  Rng rng(0xB10C + 7);
  for (index n : {index{3}, index{8}, index{17}, index{48}, index{70}})
    for (index k : {index{2}, index{9}, index{33}})
      for (Trans trans : {Trans::No, Trans::Yes}) {
        Matrix a = trans == Trans::No ? random_gaussian(rng, n, k) : random_gaussian(rng, k, n);
        const Trans tb = trans == Trans::No ? Trans::Yes : Trans::No;
        // beta == 0: triangle-and-mirror path on large n.
        Matrix c(n, n);
        Matrix expected(n, n);
        ref::gemm(1.1, a.view(), trans, a.view(), tb, 0.0, expected.view());
        syrk(1.1, a.view(), trans, 0.0, c.view());
        expect_near(c.view(), expected.view(), 1e-10, "syrk beta=0");
        for (index j = 0; j < n; ++j)
          for (index i = 0; i < j; ++i) EXPECT_EQ(c(i, j), c(j, i));
        // beta != 0 falls back to the general product (C may be asymmetric).
        Matrix c2 = random_gaussian(rng, n, n);
        Matrix expected2 = c2;
        ref::gemm(1.1, a.view(), trans, a.view(), tb, -0.4, expected2.view());
        syrk(1.1, a.view(), trans, -0.4, c2.view());
        expect_near(c2.view(), expected2.view(), 1e-10, "syrk beta!=0");
      }
}

TEST(BlasBlocked, DegenerateShapes) {
  // Zero-sized operands and k == 0 reduce to C = beta * C.
  Matrix a(4, 0);
  Matrix b(0, 3);
  Matrix c = Matrix::identity(4).block(0, 0, 4, 3).empty() ? Matrix(4, 3) : Matrix(4, 3);
  for (index i = 0; i < 3; ++i) c(i, i) = 3.0;
  gemm(1.0, a.view(), Trans::No, b.view(), Trans::No, 0.5, c.view());
  EXPECT_EQ(c(0, 0), 1.5);
  EXPECT_EQ(c(3, 2), 0.0);
  Matrix e(0, 0);
  gemm(1.0, e.view(), Trans::No, e.view(), Trans::No, 0.0, e.view());  // no-op, no crash
}

}  // namespace
}  // namespace pitk::la
