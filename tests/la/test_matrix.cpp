#include "la/matrix.hpp"

#include <gtest/gtest.h>

#include "la/io.hpp"

namespace pitk::la {
namespace {

TEST(Matrix, DefaultIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0);
  EXPECT_EQ(m.cols(), 0);
  EXPECT_TRUE(m.empty());
}

TEST(Matrix, ConstructionZeroInitializes) {
  Matrix m(3, 2);
  for (index j = 0; j < 2; ++j)
    for (index i = 0; i < 3; ++i) EXPECT_EQ(m(i, j), 0.0);
}

TEST(Matrix, InitializerListIsRowMajor) {
  Matrix m({{1, 2, 3}, {4, 5, 6}});
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m(0, 1), 2.0);
  EXPECT_EQ(m(1, 2), 6.0);
}

TEST(Matrix, StorageIsColumnMajor) {
  Matrix m({{1, 2}, {3, 4}});
  EXPECT_EQ(m.data()[0], 1.0);
  EXPECT_EQ(m.data()[1], 3.0);  // (1,0) directly after (0,0)
  EXPECT_EQ(m.data()[2], 2.0);
  EXPECT_EQ(m.data()[3], 4.0);
}

TEST(Matrix, IdentityAndDiagonal) {
  Matrix i3 = Matrix::identity(3);
  EXPECT_EQ(i3(1, 1), 1.0);
  EXPECT_EQ(i3(0, 1), 0.0);
  const double d[] = {2.0, 5.0};
  Matrix dm = Matrix::diagonal(std::span<const double>(d, 2));
  EXPECT_EQ(dm(0, 0), 2.0);
  EXPECT_EQ(dm(1, 1), 5.0);
  EXPECT_EQ(dm(0, 1), 0.0);
}

TEST(Matrix, BlockViewsAliasStorage) {
  Matrix m(4, 4);
  MatrixView b = m.block(1, 2, 2, 2);
  b(0, 0) = 7.0;
  b(1, 1) = 8.0;
  EXPECT_EQ(m(1, 2), 7.0);
  EXPECT_EQ(m(2, 3), 8.0);
  EXPECT_EQ(b.ld(), 4);
}

TEST(Matrix, NestedBlocks) {
  Matrix m(6, 6);
  for (index j = 0; j < 6; ++j)
    for (index i = 0; i < 6; ++i) m(i, j) = static_cast<double>(10 * i + j);
  ConstMatrixView outer = m.block(1, 1, 4, 4);
  ConstMatrixView inner = outer.block(1, 1, 2, 2);
  EXPECT_EQ(inner(0, 0), m(2, 2));
  EXPECT_EQ(inner(1, 1), m(3, 3));
}

TEST(Matrix, ColSpanIsContiguousColumn) {
  Matrix m({{1, 2}, {3, 4}, {5, 6}});
  auto c1 = m.view().col_span(1);
  ASSERT_EQ(c1.size(), 3u);
  EXPECT_EQ(c1[0], 2.0);
  EXPECT_EQ(c1[2], 6.0);
}

TEST(Matrix, AssignCopiesAcrossStrides) {
  Matrix src({{1, 2}, {3, 4}});
  Matrix dst(4, 4);
  dst.block(2, 2, 2, 2).assign(src.view());
  EXPECT_EQ(dst(2, 2), 1.0);
  EXPECT_EQ(dst(3, 3), 4.0);
  EXPECT_EQ(dst(0, 0), 0.0);
}

TEST(Matrix, TransposedAndEquality) {
  Matrix m({{1, 2, 3}, {4, 5, 6}});
  Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  EXPECT_EQ(t(2, 1), 6.0);
  EXPECT_TRUE(t.transposed() == m);
  EXPECT_FALSE(t == m);
}

TEST(Matrix, ZeroRowAndZeroColShapes) {
  Matrix m(0, 5);
  EXPECT_TRUE(m.empty());
  Matrix n(5, 0);
  EXPECT_TRUE(n.empty());
  Matrix v = vstack(m.view(), Matrix(2, 5).view());
  EXPECT_EQ(v.rows(), 2);
  EXPECT_EQ(v.cols(), 5);
}

TEST(Matrix, VstackHstack) {
  Matrix a({{1, 2}});
  Matrix b({{3, 4}, {5, 6}});
  Matrix v = vstack(a.view(), b.view());
  EXPECT_EQ(v.rows(), 3);
  EXPECT_EQ(v(2, 1), 6.0);
  Matrix h = hstack(b.view(), b.view());
  EXPECT_EQ(h.cols(), 4);
  EXPECT_EQ(h(1, 3), 6.0);
}

TEST(Matrix, ResizeIsDestructiveAndZeroing) {
  Matrix m({{1, 2}, {3, 4}});
  m.resize(3, 1);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 1);
  EXPECT_EQ(m(2, 0), 0.0);
}

TEST(Vector, BasicOpsAndMatrixView) {
  Vector v({1.0, 2.0, 3.0});
  EXPECT_EQ(v.size(), 3);
  EXPECT_EQ(v[1], 2.0);
  auto mv = v.as_matrix();
  EXPECT_EQ(mv.rows(), 3);
  EXPECT_EQ(mv.cols(), 1);
  mv(0, 0) = 9.0;
  EXPECT_EQ(v[0], 9.0);
}

TEST(Io, ToStringDoesNotCrashOnOddShapes) {
  EXPECT_FALSE(to_string(Matrix(0, 3).view()).empty());
  EXPECT_FALSE(to_string(Matrix::identity(2).view()).empty());
  Vector v({1.5});
  EXPECT_NE(to_string(v.span()).find("1.5"), std::string::npos);
}

TEST(Matrix, AlignedStorage) {
  Matrix m(7, 3);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(m.data()) % cache_line_bytes, 0u);
}

}  // namespace
}  // namespace pitk::la
