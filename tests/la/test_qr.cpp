#include "la/qr.hpp"

#include <gtest/gtest.h>

#include "la/blas.hpp"
#include "la/random.hpp"
#include "test_util.hpp"

namespace pitk::la {
namespace {

/// Reconstruct A from its factored form by applying Q to [R; 0].
Matrix reconstruct(const Matrix& factored, std::span<const double> tau) {
  const index r = factored.rows();
  const index c = factored.cols();
  Matrix rz(r, c);
  const index k = std::min(r, c);
  for (index j = 0; j < c; ++j)
    for (index i = 0; i <= std::min(j, k - 1); ++i) rz(i, j) = factored(i, j);
  qr_apply_q(factored.view(), tau, rz.view());
  return rz;
}

class QrShapeTest : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(QrShapeTest, ReconstructsInput) {
  auto [r, c] = GetParam();
  Rng rng(31 + r * 10 + c);
  Matrix a = random_gaussian(rng, r, c);
  Matrix f = a;
  std::vector<double> tau(static_cast<std::size_t>(std::min(r, c)));
  qr_factor(f.view(), tau);
  Matrix back = reconstruct(f, tau);
  test::expect_near(back.view(), a.view(), 1e-12);
}

TEST_P(QrShapeTest, QtQIsIdentity) {
  auto [r, c] = GetParam();
  Rng rng(37 + r * 10 + c);
  Matrix a = random_gaussian(rng, r, c);
  std::vector<double> tau(static_cast<std::size_t>(std::min(r, c)));
  qr_factor(a.view(), tau);
  // Apply Q then Q^T to a random block; must be the identity action.
  Matrix x = random_gaussian(rng, r, 3);
  Matrix y = x;
  qr_apply_q(a.view(), tau, y.view());
  qr_apply_qt(a.view(), tau, y.view());
  test::expect_near(y.view(), x.view(), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Shapes, QrShapeTest,
                         ::testing::Values(std::pair{1, 1}, std::pair{4, 4}, std::pair{8, 3},
                                           std::pair{3, 8}, std::pair{12, 12}, std::pair{2, 5},
                                           std::pair{5, 2}, std::pair{20, 7}));

TEST(Qr, ThinQHasOrthonormalColumns) {
  Rng rng(41);
  Matrix a = random_gaussian(rng, 9, 4);
  std::vector<double> tau(4);
  qr_factor(a.view(), tau);
  Matrix q = qr_form_q(a.view(), tau);
  EXPECT_EQ(q.rows(), 9);
  EXPECT_EQ(q.cols(), 4);
  Matrix qtq = multiply(q.view(), Trans::Yes, q.view(), Trans::No);
  test::expect_near(qtq.view(), Matrix::identity(4).view(), 1e-13);
}

TEST(Qr, RAgreesWithNormalEquationsCholesky) {
  // R^T R == A^T A up to rounding (uniqueness of the Cholesky factor).
  Rng rng(43);
  Matrix a = random_gaussian(rng, 10, 5);
  Matrix ata = multiply(a.view(), Trans::Yes, a.view(), Trans::No);
  std::vector<double> tau(5);
  qr_factor(a.view(), tau);
  Matrix rsq(5, 5);
  qr_extract_r_square(a.view(), rsq.view());
  Matrix rtr = multiply(rsq.view(), Trans::Yes, rsq.view(), Trans::No);
  test::expect_near(rtr.view(), ata.view(), 1e-11);
}

TEST(Qr, LeastSquaresMatchesNormalEquations) {
  Rng rng(47);
  Matrix a = random_gaussian(rng, 12, 4);
  Vector b = random_gaussian_vector(rng, 12);
  Vector x = qr_least_squares(a, b);
  // Residual must be orthogonal to the column space: A^T (A x - b) = 0.
  Vector res(12);
  gemv(1.0, a.view(), Trans::No, x.span(), 0.0, res.span());
  axpy(-1.0, b.span(), res.span());
  Vector atr(4);
  gemv(1.0, a.view(), Trans::Yes, res.span(), 0.0, atr.span());
  EXPECT_LE(norm_max(atr.span()), 1e-11);
}

TEST(Qr, ExtractRSquarePadsShortPanels) {
  Rng rng(53);
  Matrix a = random_gaussian(rng, 2, 4);  // fewer rows than columns
  std::vector<double> tau(2);
  qr_factor(a.view(), tau);
  Matrix r(4, 4);
  qr_extract_r_square(a.view(), r.view());
  // Rows 2..3 must be zero padding.
  for (index j = 0; j < 4; ++j) {
    EXPECT_EQ(r(2, j), 0.0);
    EXPECT_EQ(r(3, j), 0.0);
  }
  // Strictly-lower part must be zero.
  EXPECT_EQ(r(1, 0), 0.0);
}

TEST(Qr, ZeroRowInputsAreHandled) {
  Matrix a(0, 3);
  std::vector<double> tau(0);
  qr_factor(a.view(), tau);  // must not crash
  Matrix r(3, 3);
  qr_extract_r_square(a.view(), r.view());
  EXPECT_EQ(norm_max(r.view()), 0.0);
}

TEST(Qr, AppliesToZeroColumnAttachment) {
  Rng rng(59);
  Matrix a = random_gaussian(rng, 4, 2);
  std::vector<double> tau(2);
  qr_factor(a.view(), tau);
  Matrix empty(4, 0);
  qr_apply_qt(a.view(), tau, empty.view());  // no-op, must not crash
}

TEST(Qr, ScratchFactorApplyMatchesManualPath) {
  Rng rng(61);
  Matrix a = random_gaussian(rng, 6, 3);
  Matrix att = random_gaussian(rng, 6, 2);
  Matrix a2 = a;
  Matrix att2 = att;

  QrScratch scratch;
  scratch.factor_apply(a.view(), att.view());

  std::vector<double> tau(3);
  qr_factor(a2.view(), tau);
  qr_apply_qt(a2.view(), tau, att2.view());

  test::expect_near(att.view(), att2.view(), 1e-13);
  test::expect_near(a.view(), a2.view(), 1e-13);
}

TEST(Qr, StableOnGradedColumns) {
  // Columns with wildly different scales: Householder QR must not blow up.
  Rng rng(67);
  Matrix a = random_gaussian(rng, 8, 4);
  for (index i = 0; i < 8; ++i) {
    a(i, 0) *= 1e12;
    a(i, 3) *= 1e-12;
  }
  Matrix f = a;
  std::vector<double> tau(4);
  qr_factor(f.view(), tau);
  Matrix back = reconstruct(f, tau);
  // Relative accuracy per column scale.
  for (index j = 0; j < 4; ++j) {
    double colnorm = 0.0;
    for (index i = 0; i < 8; ++i) colnorm = std::max(colnorm, std::abs(a(i, j)));
    for (index i = 0; i < 8; ++i)
      EXPECT_LE(std::abs(back(i, j) - a(i, j)), 1e-12 * colnorm) << i << "," << j;
  }
}

}  // namespace
}  // namespace pitk::la
