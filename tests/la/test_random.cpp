#include "la/random.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "la/blas.hpp"
#include "la/cholesky.hpp"
#include "test_util.hpp"

namespace pitk::la {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LE(same, 1);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 100; ++i) {
    const double u = rng.uniform(-2.0, 3.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, GaussianMomentsRoughlyStandard) {
  Rng rng(11);
  const int n = 50000;
  double sum = 0.0;
  double sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sumsq += g * g;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, BelowIsBoundedAndCoversRange) {
  Rng rng(13);
  std::array<int, 5> hits{};
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.below(5);
    ASSERT_LT(v, 5u);
    hits[static_cast<std::size_t>(v)]++;
  }
  for (int h : hits) EXPECT_GT(h, 700);  // roughly uniform
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng a(99);
  Rng b = a.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LE(same, 1);
}

TEST(Random, OrthonormalSquare) {
  Rng rng(17);
  for (index n : {1, 3, 6, 20}) {
    Matrix q = random_orthonormal(rng, n);
    Matrix qtq = multiply(q.view(), Trans::Yes, q.view(), Trans::No);
    test::expect_near(qtq.view(), Matrix::identity(n).view(), 1e-12);
  }
}

TEST(Random, OrthonormalThin) {
  Rng rng(19);
  Matrix q = random_orthonormal(rng, 10, 4);
  Matrix qtq = multiply(q.view(), Trans::Yes, q.view(), Trans::No);
  test::expect_near(qtq.view(), Matrix::identity(4).view(), 1e-12);
}

TEST(Random, SpdHasRequestedConditioning) {
  Rng rng(23);
  Matrix a = random_spd(rng, 6, 100.0);
  // SPD: Cholesky must succeed.
  Matrix l = a;
  ASSERT_TRUE(cholesky_lower(l.view()));
  // Symmetric by construction.
  for (index j = 0; j < 6; ++j)
    for (index i = 0; i < 6; ++i) EXPECT_EQ(a(i, j), a(j, i));
}

TEST(Random, FillGaussianCoversWholeView) {
  Rng rng(29);
  Matrix m(5, 5);
  fill_gaussian(rng, m.view());
  int zeros = 0;
  for (index j = 0; j < 5; ++j)
    for (index i = 0; i < 5; ++i) zeros += m(i, j) == 0.0;
  EXPECT_EQ(zeros, 0);
}

}  // namespace
}  // namespace pitk::la
