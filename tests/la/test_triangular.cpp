#include "la/triangular.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "la/blas.hpp"
#include "la/random.hpp"
#include "test_util.hpp"

namespace pitk::la {
namespace {

Matrix random_upper(Rng& rng, index n) {
  Matrix t(n, n);
  for (index j = 0; j < n; ++j) {
    for (index i = 0; i < j; ++i) t(i, j) = rng.gaussian() * 0.5;
    t(j, j) = 2.0 + rng.uniform();  // well away from zero
  }
  return t;
}

TEST(Triangular, UpperInverseTimesOriginalIsIdentity) {
  Rng rng(101);
  for (index n : {1, 2, 3, 7, 12}) {
    Matrix t = random_upper(rng, n);
    Matrix tinv = t;
    tri_inverse_upper(tinv.view());
    Matrix prod = multiply(t.view(), tinv.view());
    test::expect_near(prod.view(), Matrix::identity(n).view(), 1e-11,
                      "upper n=" + std::to_string(n));
    // The inverse of an upper triangle stays upper triangular.
    for (index j = 0; j < n; ++j)
      for (index i = j + 1; i < n; ++i) EXPECT_EQ(tinv(i, j), 0.0);
  }
}

TEST(Triangular, LowerInverseTimesOriginalIsIdentity) {
  Rng rng(103);
  for (index n : {1, 2, 3, 7, 12}) {
    Matrix t = random_upper(rng, n).transposed();
    Matrix tinv = t;
    tri_inverse_lower(tinv.view());
    Matrix prod = multiply(t.view(), tinv.view());
    test::expect_near(prod.view(), Matrix::identity(n).view(), 1e-11,
                      "lower n=" + std::to_string(n));
    for (index j = 0; j < n; ++j)
      for (index i = 0; i < j; ++i) EXPECT_EQ(tinv(i, j), 0.0);
  }
}

TEST(Triangular, InverseMatchesTrsvColumnwise) {
  Rng rng(107);
  const index n = 6;
  Matrix t = random_upper(rng, n);
  Matrix tinv = t;
  tri_inverse_upper(tinv.view());
  // Column j of T^{-1} solves T x = e_j.
  for (index j = 0; j < n; ++j) {
    Vector e(n);
    e[j] = 1.0;
    trsv(Uplo::Upper, Trans::No, Diag::NonUnit, t.view(), e.span());
    test::expect_near(e.span(), tinv.view().col_span(j), 1e-12);
  }
}

TEST(Triangular, DiagCondEstimates) {
  Matrix t({{4.0, 1.0}, {0.0, 0.5}});
  EXPECT_NEAR(tri_diag_cond(t.view()), 8.0, 1e-15);
  Matrix s({{0.0, 1.0}, {0.0, 1.0}});
  EXPECT_TRUE(std::isinf(tri_diag_cond(s.view())));
  EXPECT_EQ(tri_diag_cond(Matrix(0, 0).view()), 1.0);
}

}  // namespace
}  // namespace pitk::la
