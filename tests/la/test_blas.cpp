#include "la/blas.hpp"

#include <gtest/gtest.h>

#include "la/random.hpp"
#include "test_util.hpp"

namespace pitk::la {
namespace {

/// Naive reference product with explicit transposition handling.
Matrix naive_gemm(double alpha, const Matrix& a, Trans ta, const Matrix& b, Trans tb,
                  double beta, const Matrix& c0) {
  auto A = [&](index i, index j) { return ta == Trans::No ? a(i, j) : a(j, i); };
  auto B = [&](index i, index j) { return tb == Trans::No ? b(i, j) : b(j, i); };
  const index m = ta == Trans::No ? a.rows() : a.cols();
  const index p = ta == Trans::No ? a.cols() : a.rows();
  const index n = tb == Trans::No ? b.cols() : b.rows();
  Matrix c = c0;
  for (index i = 0; i < m; ++i)
    for (index j = 0; j < n; ++j) {
      double acc = 0.0;
      for (index l = 0; l < p; ++l) acc += A(i, l) * B(l, j);
      c(i, j) = beta * c0(i, j) + alpha * acc;
    }
  return c;
}

class GemmTest : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmTest, AllTransposeCombinationsMatchNaive) {
  auto [m, p, n] = GetParam();
  Rng rng(42 + m * 100 + p * 10 + n);
  for (Trans ta : {Trans::No, Trans::Yes})
    for (Trans tb : {Trans::No, Trans::Yes}) {
      Matrix a = ta == Trans::No ? random_gaussian(rng, m, p) : random_gaussian(rng, p, m);
      Matrix b = tb == Trans::No ? random_gaussian(rng, p, n) : random_gaussian(rng, n, p);
      Matrix c0 = random_gaussian(rng, m, n);
      Matrix c = c0;
      gemm(1.7, a.view(), ta, b.view(), tb, -0.3, c.view());
      Matrix ref = naive_gemm(1.7, a, ta, b, tb, -0.3, c0);
      test::expect_near(c.view(), ref.view(), 1e-12);
    }
}

INSTANTIATE_TEST_SUITE_P(Shapes, GemmTest,
                         ::testing::Values(std::tuple{1, 1, 1}, std::tuple{3, 2, 4},
                                           std::tuple{5, 5, 5}, std::tuple{7, 1, 3},
                                           std::tuple{2, 9, 2}, std::tuple{16, 8, 4}));

TEST(Blas, GemmBetaZeroOverwritesGarbage) {
  Matrix c(2, 2);
  c(0, 0) = std::numeric_limits<double>::quiet_NaN();
  Matrix a = Matrix::identity(2);
  gemm(1.0, a.view(), Trans::No, a.view(), Trans::No, 0.0, c.view());
  EXPECT_EQ(c(0, 0), 1.0);
  EXPECT_EQ(c(0, 1), 0.0);
}

TEST(Blas, GemvBothTranspositions) {
  Rng rng(7);
  Matrix a = random_gaussian(rng, 4, 3);
  Vector x = random_gaussian_vector(rng, 3);
  Vector y(4);
  gemv(2.0, a.view(), Trans::No, x.span(), 0.0, y.span());
  for (index i = 0; i < 4; ++i) {
    double acc = 0.0;
    for (index j = 0; j < 3; ++j) acc += a(i, j) * x[j];
    EXPECT_NEAR(y[i], 2.0 * acc, 1e-13);
  }
  Vector z(3);
  gemv(1.0, a.view(), Trans::Yes, y.span(), 0.0, z.span());
  for (index j = 0; j < 3; ++j) {
    double acc = 0.0;
    for (index i = 0; i < 4; ++i) acc += a(i, j) * y[i];
    EXPECT_NEAR(z[j], acc, 1e-12);
  }
}

class TrsvTest : public ::testing::TestWithParam<std::tuple<Uplo, Trans, Diag>> {};

TEST_P(TrsvTest, SolvesAgainstMultiplication) {
  auto [uplo, trans, diag] = GetParam();
  Rng rng(11);
  const index n = 6;
  Matrix t(n, n);
  for (index j = 0; j < n; ++j)
    for (index i = 0; i < n; ++i) {
      const bool in_tri = uplo == Uplo::Upper ? i <= j : i >= j;
      if (in_tri) t(i, j) = (i == j) ? 2.0 + rng.uniform() : rng.gaussian() * 0.3;
    }
  if (diag == Diag::Unit)
    for (index i = 0; i < n; ++i) t(i, i) = 1.0;  // implied, but set for the check

  Vector x_true = random_gaussian_vector(rng, n);
  // b = op(T) x.
  Vector b(n);
  Matrix teff = trans == Trans::No ? t : t.transposed();
  gemv(1.0, teff.view(), Trans::No, x_true.span(), 0.0, b.span());
  trsv(uplo, trans, diag, t.view(), b.span());
  test::expect_near(b.span(), x_true.span(), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(
    AllOrientations, TrsvTest,
    ::testing::Combine(::testing::Values(Uplo::Upper, Uplo::Lower),
                       ::testing::Values(Trans::No, Trans::Yes),
                       ::testing::Values(Diag::NonUnit, Diag::Unit)));

class TrsmTest : public ::testing::TestWithParam<std::tuple<Uplo, Trans>> {};

TEST_P(TrsmTest, LeftSolveMatchesColumnwiseTrsv) {
  auto [uplo, trans] = GetParam();
  Rng rng(13);
  const index n = 5;
  Matrix t = random_gaussian(rng, n, n);
  for (index i = 0; i < n; ++i) t(i, i) = 3.0 + rng.uniform();
  Matrix x_true = random_gaussian(rng, n, 3);
  Matrix teff = trans == Trans::No ? t : t.transposed();
  // Zero out the excluded triangle of teff per uplo o the *effective* operator
  // used by trsm; build b = tri(op(T)) * x.
  Matrix trieff(n, n);
  for (index j = 0; j < n; ++j)
    for (index i = 0; i < n; ++i) {
      const bool in_tri_storage = uplo == Uplo::Upper ? true : true;
      (void)in_tri_storage;
      trieff(i, j) = teff(i, j);
    }
  // Apply triangle selection in storage order of t, then transpose if needed.
  Matrix tsel(n, n);
  for (index j = 0; j < n; ++j)
    for (index i = 0; i < n; ++i)
      if (uplo == Uplo::Upper ? i <= j : i >= j) tsel(i, j) = t(i, j);
  Matrix op = trans == Trans::No ? tsel : tsel.transposed();
  Matrix b = multiply(op.view(), x_true.view());
  trsm_left(uplo, trans, Diag::NonUnit, t.view(), b.view());
  test::expect_near(b.view(), x_true.view(), 1e-11);
}

TEST_P(TrsmTest, RightSolveMatchesDefinition) {
  auto [uplo, trans] = GetParam();
  Rng rng(17);
  const index n = 5;
  Matrix t = random_gaussian(rng, n, n);
  for (index i = 0; i < n; ++i) t(i, i) = 3.0 + rng.uniform();
  Matrix tsel(n, n);
  for (index j = 0; j < n; ++j)
    for (index i = 0; i < n; ++i)
      if (uplo == Uplo::Upper ? i <= j : i >= j) tsel(i, j) = t(i, j);
  Matrix op = trans == Trans::No ? tsel : tsel.transposed();
  Matrix x_true = random_gaussian(rng, 4, n);
  Matrix b = multiply(x_true.view(), op.view());
  trsm_right(uplo, trans, Diag::NonUnit, t.view(), b.view());
  test::expect_near(b.view(), x_true.view(), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(AllOrientations, TrsmTest,
                         ::testing::Combine(::testing::Values(Uplo::Upper, Uplo::Lower),
                                            ::testing::Values(Trans::No, Trans::Yes)));

TEST(Blas, TrmmLeftMatchesMultiply) {
  Rng rng(19);
  const index n = 5;
  Matrix t = random_gaussian(rng, n, n);
  Matrix tsel(n, n);
  for (index j = 0; j < n; ++j)
    for (index i = 0; i <= j; ++i) tsel(i, j) = t(i, j);
  Matrix b = random_gaussian(rng, n, 3);
  Matrix expect = multiply(tsel.view(), b.view());
  trmm_left(Uplo::Upper, Trans::No, Diag::NonUnit, 1.0, t.view(), b.view());
  test::expect_near(b.view(), expect.view(), 1e-12);

  // Lower, transposed path.
  Matrix lsel(n, n);
  for (index j = 0; j < n; ++j)
    for (index i = j; i < n; ++i) lsel(i, j) = t(i, j);
  Matrix b2 = random_gaussian(rng, n, 2);
  Matrix expect2 = multiply(lsel.transposed().view(), b2.view());
  trmm_left(Uplo::Lower, Trans::Yes, Diag::NonUnit, 1.0, t.view(), b2.view());
  test::expect_near(b2.view(), expect2.view(), 1e-12);
}

TEST(Blas, SyrkBothOrientations) {
  Rng rng(23);
  Matrix a = random_gaussian(rng, 4, 6);
  Matrix c(4, 4);
  syrk(1.0, a.view(), Trans::No, 0.0, c.view());
  Matrix ref = multiply(a.view(), Trans::No, a.view(), Trans::Yes);
  test::expect_near(c.view(), ref.view(), 1e-12);

  Matrix c2(6, 6);
  syrk(2.0, a.view(), Trans::Yes, 0.0, c2.view());
  Matrix ref2 = multiply(a.view(), Trans::Yes, a.view(), Trans::No);
  scale(2.0, ref2.view());
  test::expect_near(c2.view(), ref2.view(), 1e-12);
}

TEST(Blas, NormsAndDiffs) {
  Matrix a({{3, 0}, {0, 4}});
  EXPECT_NEAR(norm_fro(a.view()), 5.0, 1e-15);
  EXPECT_EQ(norm_max(a.view()), 4.0);
  Vector v({3.0, -4.0});
  EXPECT_NEAR(norm2(v.span()), 5.0, 1e-15);
  EXPECT_EQ(norm_max(v.span()), 4.0);
  Matrix b({{3, 0}, {0, 4.5}});
  EXPECT_NEAR(max_abs_diff(a.view(), b.view()), 0.5, 1e-15);
}

TEST(Blas, SymmetrizeAndAllFinite) {
  Matrix a({{1, 2}, {4, 3}});
  symmetrize(a.view());
  EXPECT_EQ(a(0, 1), 3.0);
  EXPECT_EQ(a(1, 0), 3.0);
  EXPECT_TRUE(all_finite(a.view()));
  a(0, 0) = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(all_finite(a.view()));
}

TEST(Blas, AxpyAndScale) {
  Matrix x({{1, 2}, {3, 4}});
  Matrix y(2, 2);
  axpy(2.0, x.view(), y.view());
  EXPECT_EQ(y(1, 1), 8.0);
  scale(0.5, y.view());
  EXPECT_EQ(y(1, 1), 4.0);
  Vector vx({1.0, 1.0});
  Vector vy({0.0, 2.0});
  axpy(3.0, vx.span(), vy.span());
  EXPECT_EQ(vy[0], 3.0);
  EXPECT_EQ(vy[1], 5.0);
  EXPECT_NEAR(dot(vx.span(), vy.span()), 8.0, 1e-15);
}

}  // namespace
}  // namespace pitk::la
