#include "la/lu.hpp"

#include <gtest/gtest.h>

#include "la/blas.hpp"
#include "la/random.hpp"
#include "test_util.hpp"

namespace pitk::la {
namespace {

TEST(Lu, SolvesRandomSystems) {
  Rng rng(201);
  for (index n : {1, 2, 5, 12, 30}) {
    Matrix a = random_gaussian(rng, n, n);
    Vector x_true = random_gaussian_vector(rng, n);
    Vector b(n);
    gemv(1.0, a.view(), Trans::No, x_true.span(), 0.0, b.span());
    Matrix lu = a;
    std::vector<index> piv(static_cast<std::size_t>(n));
    ASSERT_TRUE(lu_factor(lu.view(), piv)) << n;
    lu_solve(lu.view(), piv, b.span());
    test::expect_near(b.span(), x_true.span(), 1e-9 * n, "n=" + std::to_string(n));
  }
}

TEST(Lu, BlockSolve) {
  Rng rng(203);
  const index n = 7;
  Matrix a = random_gaussian(rng, n, n);
  Matrix x_true = random_gaussian(rng, n, 4);
  Matrix b = multiply(a.view(), x_true.view());
  ASSERT_TRUE(solve_inplace(a, b.view()));
  test::expect_near(b.view(), x_true.view(), 1e-10);
}

TEST(Lu, PivotingHandlesZeroLeadingEntry) {
  Matrix a({{0.0, 1.0}, {1.0, 0.0}});  // singular without pivoting
  Vector b({2.0, 3.0});
  ASSERT_TRUE(solve_inplace(a, b.as_matrix()));
  EXPECT_NEAR(b[0], 3.0, 1e-15);
  EXPECT_NEAR(b[1], 2.0, 1e-15);
}

TEST(Lu, DetectsSingular) {
  Matrix a({{1.0, 2.0}, {2.0, 4.0}});
  Vector b({1.0, 2.0});
  EXPECT_FALSE(solve_inplace(a, b.as_matrix()));
  Matrix zero(3, 3);
  Matrix rhs(3, 1);
  EXPECT_FALSE(solve_inplace(zero, rhs.view()));
}

TEST(Lu, ScratchReuse) {
  Rng rng(207);
  LuScratch scratch;
  for (int rep = 0; rep < 5; ++rep) {
    const index n = 3 + rep;
    Matrix a = random_gaussian(rng, n, n);
    Matrix acopy = a;
    Vector x_true = random_gaussian_vector(rng, n);
    Vector b(n);
    gemv(1.0, a.view(), Trans::No, x_true.span(), 0.0, b.span());
    ASSERT_TRUE(scratch.factor_solve(acopy.view(), b.as_matrix()));
    test::expect_near(b.span(), x_true.span(), 1e-9);
  }
}

TEST(Lu, IllConditionedResidualStaysSmall) {
  // Backward stability check: the residual A x - b stays tiny even when the
  // forward error does not.
  Rng rng(209);
  const index n = 10;
  Matrix a = random_spd(rng, n, 1e12);
  Vector b = random_gaussian_vector(rng, n);
  Matrix lu = a;
  std::vector<index> piv(static_cast<std::size_t>(n));
  ASSERT_TRUE(lu_factor(lu.view(), piv));
  Vector x = b;
  lu_solve(lu.view(), piv, x.span());
  Vector r(n);
  gemv(1.0, a.view(), Trans::No, x.span(), 0.0, r.span());
  axpy(-1.0, b.span(), r.span());
  // Backward stability bounds the residual by eps * ||A|| * ||x|| — NOT by
  // ||b||: with cond ~ 1e12 the solution itself is huge.
  EXPECT_LE(norm2(r.span()), 1e-12 * norm_fro(a.view()) * (1.0 + norm2(x.span())));
}

}  // namespace
}  // namespace pitk::la
