#include "la/cholesky.hpp"

#include <gtest/gtest.h>

#include "la/blas.hpp"
#include "la/random.hpp"
#include "test_util.hpp"

namespace pitk::la {
namespace {

TEST(Cholesky, FactorsReconstruct) {
  Rng rng(71);
  for (index n : {1, 2, 5, 9}) {
    Matrix a = random_spd(rng, n, 50.0);
    Matrix l = a;
    ASSERT_TRUE(cholesky_lower(l.view()));
    Matrix llt = multiply(l.view(), Trans::No, l.view(), Trans::Yes);
    test::expect_near(llt.view(), a.view(), 1e-12, "LL^T vs A (n=" + std::to_string(n) + ")");
  }
}

TEST(Cholesky, UpperTriangleIsZeroedOnSuccess) {
  Rng rng(73);
  Matrix a = random_spd(rng, 4, 10.0);
  ASSERT_TRUE(cholesky_lower(a.view()));
  for (index j = 1; j < 4; ++j)
    for (index i = 0; i < j; ++i) EXPECT_EQ(a(i, j), 0.0);
}

TEST(Cholesky, RejectsIndefinite) {
  Matrix a({{1.0, 2.0}, {2.0, 1.0}});  // eigenvalues 3, -1
  EXPECT_FALSE(cholesky_lower(a.view()));
  Matrix zero(3, 3);
  EXPECT_FALSE(cholesky_lower(zero.view()));
}

TEST(Cholesky, SolveVectorAndBlock) {
  Rng rng(79);
  Matrix a = random_spd(rng, 6, 100.0);
  Matrix l = a;
  ASSERT_TRUE(cholesky_lower(l.view()));
  Vector x_true = random_gaussian_vector(rng, 6);
  Vector b(6);
  gemv(1.0, a.view(), Trans::No, x_true.span(), 0.0, b.span());
  chol_solve(l.view(), b.span());
  test::expect_near(b.span(), x_true.span(), 1e-10);

  Matrix xm = random_gaussian(rng, 6, 3);
  Matrix bm = multiply(a.view(), xm.view());
  chol_solve(l.view(), bm.view());
  test::expect_near(bm.view(), xm.view(), 1e-10);
}

TEST(Cholesky, InverseMatchesSolve) {
  Rng rng(83);
  Matrix a = random_spd(rng, 5, 30.0);
  auto inv = spd_inverse(a.view());
  ASSERT_TRUE(inv.has_value());
  Matrix prod = multiply(a.view(), inv->view());
  test::expect_near(prod.view(), Matrix::identity(5).view(), 1e-10);
  // Exactly symmetric by construction.
  for (index j = 0; j < 5; ++j)
    for (index i = 0; i < 5; ++i) EXPECT_EQ((*inv)(i, j), (*inv)(j, i));
}

TEST(Cholesky, SpdSolveMatchesInverse) {
  Rng rng(89);
  Matrix a = random_spd(rng, 4, 10.0);
  Matrix b = random_gaussian(rng, 4, 2);
  auto x = spd_solve(a.view(), b.view());
  ASSERT_TRUE(x.has_value());
  Matrix ax = multiply(a.view(), x->view());
  test::expect_near(ax.view(), b.view(), 1e-11);
  EXPECT_FALSE(spd_solve(Matrix(2, 2).view(), Matrix(2, 1).view()).has_value());
}

TEST(Cholesky, IllConditionedStillAccurateInResidual) {
  Rng rng(97);
  Matrix a = random_spd(rng, 8, 1e10);
  Matrix l = a;
  ASSERT_TRUE(cholesky_lower(l.view()));
  Matrix llt = multiply(l.view(), Trans::No, l.view(), Trans::Yes);
  // Backward error (residual) stays small even when the condition number is
  // large — the factorization itself is backward stable.
  EXPECT_LE(max_abs_diff(llt.view(), a.view()), 1e-13 * norm_max(a.view()) * 8);
}

}  // namespace
}  // namespace pitk::la
