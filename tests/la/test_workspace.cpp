/// \file test_workspace.cpp
/// The per-thread scratch arena: scope rewind semantics, growth without view
/// invalidation, consolidation via reset(), zero allocations once warm, and
/// thread-locality of tls_workspace().

#include "la/workspace.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "la/blas.hpp"
#include "la/random.hpp"

namespace pitk::la {
namespace {

TEST(Workspace, ScopeRewindsAndReusesMemory) {
  Workspace ws;
  double* first = nullptr;
  {
    Workspace::Scope scope(ws);
    MatrixView m = scope.mat(5, 7);
    first = m.data();
    EXPECT_EQ(m.rows(), 5);
    EXPECT_EQ(m.cols(), 7);
    EXPECT_EQ(m.ld(), 5);
    for (index j = 0; j < 7; ++j)
      for (index i = 0; i < 5; ++i) EXPECT_EQ(m(i, j), 0.0);
  }
  {
    // Same bytes come back after the scope rewound.
    Workspace::Scope scope(ws);
    MatrixView m = scope.mat(5, 7);
    EXPECT_EQ(m.data(), first);
  }
}

TEST(Workspace, NestedScopesUnwindLikeAStack) {
  Workspace ws;
  Workspace::Scope outer(ws);
  std::span<double> a = outer.vec(10);
  a[0] = 42.0;
  {
    Workspace::Scope inner(ws);
    std::span<double> b = inner.vec(1000);
    b[999] = 1.0;
    EXPECT_EQ(a[0], 42.0);  // outer borrow untouched by inner traffic
  }
  std::span<double> c = outer.vec(4);
  (void)c;
  EXPECT_EQ(a[0], 42.0);
}

TEST(Workspace, GrowthKeepsLiveViewsValidAndResetConsolidates) {
  Workspace ws;
  {
    Workspace::Scope scope(ws);
    // First borrow fits the initial chunk; the second is far bigger than any
    // chunk so growth must append rather than reallocate.
    std::span<double> small = scope.vec(64);
    small[0] = 7.0;
    std::span<double> huge = scope.vec(1 << 20);
    huge[(1 << 20) - 1] = 9.0;
    EXPECT_EQ(small[0], 7.0);
    EXPECT_GE(ws.chunk_count(), 2u);
  }
  const std::size_t cap = ws.capacity();
  ws.reset();
  EXPECT_EQ(ws.chunk_count(), 1u);
  EXPECT_EQ(ws.capacity(), cap);
  // A warm consolidated arena serves the same traffic with zero allocations.
  const std::uint64_t before = aligned_alloc_count();
  {
    Workspace::Scope scope(ws);
    (void)scope.vec(64);
    (void)scope.vec(1 << 20);
  }
  EXPECT_EQ(aligned_alloc_count(), before);
}

TEST(Workspace, HighWaterTracksPeakUsage) {
  Workspace ws;
  {
    Workspace::Scope scope(ws);
    (void)scope.vec(100);
  }
  const std::size_t after_small = ws.high_water();
  EXPECT_GE(after_small, 100u);
  {
    Workspace::Scope scope(ws);
    (void)scope.vec(5000);
  }
  EXPECT_GT(ws.high_water(), after_small);
}

TEST(Workspace, TlsWorkspaceIsPerThread) {
  Workspace* main_ws = &tls_workspace();
  Workspace* other_ws = nullptr;
  std::thread t([&] { other_ws = &tls_workspace(); });
  t.join();
  EXPECT_NE(main_ws, nullptr);
  EXPECT_NE(main_ws, other_ws);
  EXPECT_EQ(main_ws, &tls_workspace());
}

TEST(Workspace, GemmIsAllocationFreeOnceWarm) {
  Rng rng(0x5EED);
  Matrix a = random_gaussian(rng, 64, 64);
  Matrix b = random_gaussian(rng, 64, 64);
  Matrix c(64, 64);
  gemm(1.0, a.view(), Trans::No, b.view(), Trans::No, 0.0, c.view());  // warm the arena
  const std::uint64_t before = aligned_alloc_count();
  for (int rep = 0; rep < 10; ++rep)
    gemm(1.0, a.view(), Trans::No, b.view(), Trans::No, 0.0, c.view());
  EXPECT_EQ(aligned_alloc_count(), before);
}

}  // namespace
}  // namespace pitk::la
