#!/usr/bin/env python3
"""Compare a fresh BENCH_*.json against a committed baseline.

Usage: bench_diff.py BASELINE FRESH [--gate-factor 2.0] [--report-only]

Per-series median seconds are compared.  Baselines are typically committed
from a different machine than the one running the comparison, so raw ratios
mix machine speed with real regressions; to cancel the machine, every
series ratio is normalized by the median ratio across all shared series.  A
series fails the gate when its *normalized* slowdown exceeds the gate
factor — i.e. when it regressed relative to its peers, which survives both
slow CI runners and globally faster rebuilds.  Exits nonzero on any failure
unless --report-only.
"""

import argparse
import json
import statistics
import sys

# Per-job latency-percentile metric fields (bench/engine_throughput.cpp
# records queue_p50_s/queue_p99_s/solve_p50_s/solve_p99_s per series).
# Report-only for now: tail latencies are too noisy on shared CI runners to
# gate on, but the trend should stay visible next to the gated medians.
PERCENTILE_SUFFIXES = ("_p50_s", "_p99_s")

# Series whose wall time does not measure solver speed and therefore must
# never gate nor contribute to the machine-speed scale.  engine_overload's
# duration is dominated by deliberate load shedding (accepted/rejected mix);
# session_recover's by journal scan + replay I/O; serve_load's by the
# open-loop arrival schedule (wall time ~= requests/qps regardless of solver
# speed) and serve_overload's by deliberate per-class shedding.  Their
# medians are printed for the trend but exempt from the regression gate.
REPORT_ONLY_SERIES = frozenset({
    "engine_overload",
    "session_recover",
    "serve_load",
    "serve_overload",
})


def load_medians(path):
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for series in doc.get("series", []):
        median = series.get("median_s", 0.0)
        if median > 0.0:  # skip meta/zero series (e.g. meta_checksum)
            out[series["name"]] = median
    return out


def load_percentiles(path):
    """name.field -> value for every latency-percentile metric field."""
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for series in doc.get("series", []):
        for key, val in series.items():
            if key.endswith(PERCENTILE_SUFFIXES) and isinstance(val, (int, float)):
                out["%s.%s" % (series["name"], key)] = val
    return out


def main(argv=None):
    """Run the comparison; `argv` defaults to sys.argv[1:] (unit tests pass
    an explicit list).  Returns the process exit code."""
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument("--gate-factor", type=float, default=2.0,
                    help="fail when a series is this many times slower than "
                         "the machine-normalized expectation (default 2.0)")
    ap.add_argument("--report-only", action="store_true",
                    help="print the comparison but always exit 0")
    args = ap.parse_args(argv)

    base = load_medians(args.baseline)
    fresh = load_medians(args.fresh)
    shared = sorted((set(base) & set(fresh)) - REPORT_ONLY_SERIES)

    failures = []
    if not shared:
        # Still fall through: a fresh file holding only report-only series
        # (e.g. serve_load run alone) deserves its trend + percentile print.
        print("bench_diff: no gated series shared between %s and %s; "
              "nothing to gate" % (args.baseline, args.fresh))
    else:
        ratios = {name: fresh[name] / base[name] for name in shared}
        scale = statistics.median(ratios.values())
        print("bench_diff: %d shared series, machine-speed scale %.3fx (%s vs %s)"
              % (len(shared), scale, args.fresh, args.baseline))

        for name in shared:
            norm = ratios[name] / scale
            flag = ""
            if norm > args.gate_factor:
                failures.append(name)
                flag = "  <-- REGRESSION"
            print("  %-32s baseline %.3es  fresh %.3es  x%6.2f  (norm x%5.2f)%s"
                  % (name, base[name], fresh[name], ratios[name], norm, flag))

    for name in sorted(REPORT_ONLY_SERIES & set(base) & set(fresh)):
        print("  %-32s baseline %.3es  fresh %.3es  x%6.2f  (report-only)"
              % (name, base[name], fresh[name], fresh[name] / base[name]))

    only_in_base = sorted(set(base) - set(fresh))
    if only_in_base:
        print("bench_diff: series missing from fresh run: " + ", ".join(only_in_base))

    base_pct = load_percentiles(args.baseline)
    fresh_pct = load_percentiles(args.fresh)
    if base_pct or fresh_pct:
        print("bench_diff: latency percentiles (report-only, never gated):")
        for name in sorted(set(base_pct) | set(fresh_pct)):
            b = base_pct.get(name)
            fr = fresh_pct.get(name)
            if b is not None and fr is not None and b > 0:
                print("  %-44s baseline %.3es  fresh %.3es  x%6.2f"
                      % (name, b, fr, fr / b))
            elif fr is not None:
                print("  %-44s fresh %.3es  (no baseline)" % (name, fr))
            else:
                print("  %-44s baseline %.3es  (missing from fresh)" % (name, b))

    if failures:
        print("bench_diff: %d series regressed beyond %.1fx normalized: %s"
              % (len(failures), args.gate_factor, ", ".join(failures)))
        return 0 if args.report_only else 1
    print("bench_diff: OK (no series beyond %.1fx normalized)" % args.gate_factor)
    return 0


if __name__ == "__main__":
    sys.exit(main())
