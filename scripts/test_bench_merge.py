#!/usr/bin/env python3
"""Unit tests for bench_merge.py (run by the CI bench-smoke job alongside
test_bench_diff.py)."""

import json
import os
import tempfile
import unittest

import bench_merge


def doc(series, schema="pitk-bench-v1"):
    return {"schema": schema, "machine": {"host": "x"},
            "series": [dict(s) for s in series]}


class BenchMergeTest(unittest.TestCase):
    def test_new_series_are_appended_in_order(self):
        merged = bench_merge.merge(
            doc([{"name": "a", "median_s": 1.0}]),
            [doc([{"name": "serve_load", "median_s": 0.5},
                  {"name": "serve_overload", "median_s": 0.1}])])
        self.assertEqual([s["name"] for s in merged["series"]],
                         ["a", "serve_load", "serve_overload"])

    def test_same_named_series_are_replaced_not_duplicated(self):
        merged = bench_merge.merge(
            doc([{"name": "a", "median_s": 1.0},
                 {"name": "serve_load", "median_s": 9.0}]),
            [doc([{"name": "serve_load", "median_s": 0.5, "shed_rate": 0.0}])])
        self.assertEqual([s["name"] for s in merged["series"]],
                         ["a", "serve_load"])
        self.assertEqual(merged["series"][1]["median_s"], 0.5)
        self.assertEqual(merged["series"][1]["shed_rate"], 0.0)

    def test_dest_top_level_fields_are_preserved(self):
        merged = bench_merge.merge(doc([{"name": "a", "median_s": 1.0}]),
                                   [doc([{"name": "b", "median_s": 2.0}])])
        self.assertEqual(merged["schema"], "pitk-bench-v1")
        self.assertEqual(merged["machine"], {"host": "x"})

    def test_schema_mismatch_is_rejected(self):
        with self.assertRaises(ValueError):
            bench_merge.merge(doc([], schema="other-v0"), [doc([])])
        with self.assertRaises(ValueError):
            bench_merge.merge(doc([]), [doc([], schema="other-v0")])

    def test_main_round_trips_files(self):
        with tempfile.TemporaryDirectory() as tmp:
            dest = os.path.join(tmp, "dest.json")
            src = os.path.join(tmp, "src.json")
            with open(dest, "w") as f:
                json.dump(doc([{"name": "a", "median_s": 1.0}]), f)
            with open(src, "w") as f:
                json.dump(doc([{"name": "serve_load", "median_s": 0.5}]), f)
            self.assertEqual(bench_merge.main([dest, src]), 0)
            with open(dest) as f:
                merged = json.load(f)
            self.assertEqual([s["name"] for s in merged["series"]],
                             ["a", "serve_load"])

    def test_main_without_sources_is_usage_error(self):
        self.assertEqual(bench_merge.main(["only-dest.json"]), 2)


if __name__ == "__main__":
    unittest.main()
