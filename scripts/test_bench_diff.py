#!/usr/bin/env python3
"""Unit tests for bench_diff.py (run by the CI bench-smoke job):

    python3 -m unittest discover -s scripts -p 'test_*.py' -v

Covers the gate logic that protects the committed BENCH_*.json baselines:
regression detection under machine-speed normalization, within-gate passes
(including globally faster/slower machines), missing-series handling, zero
and meta series filtering, and --report-only.
"""

import json
import os
import tempfile
import unittest

import bench_diff


def write_doc(path, medians, extra_fields=None):
    """Write a minimal pitk-bench-v1 document with the given name->median_s.

    `extra_fields` optionally maps a series name to additional flat fields
    (e.g. the queue_p50_s/solve_p99_s latency-percentile metrics)."""
    series = []
    for n, m in medians.items():
        entry = {"name": n, "median_s": m}
        entry.update((extra_fields or {}).get(n, {}))
        series.append(entry)
    doc = {"schema": "pitk-bench-v1", "series": series}
    with open(path, "w") as f:
        json.dump(doc, f)


class BenchDiffTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.base = os.path.join(self.tmp.name, "base.json")
        self.fresh = os.path.join(self.tmp.name, "fresh.json")

    def tearDown(self):
        self.tmp.cleanup()

    def run_diff(self, *extra):
        return bench_diff.main([self.base, self.fresh, *extra])

    def test_identical_runs_pass(self):
        write_doc(self.base, {"a": 1.0, "b": 2.0, "c": 0.5})
        write_doc(self.fresh, {"a": 1.0, "b": 2.0, "c": 0.5})
        self.assertEqual(self.run_diff(), 0)

    def test_uniformly_slower_machine_passes(self):
        # 3x slower across the board is machine speed, not a regression: the
        # median ratio normalizes it away.
        write_doc(self.base, {"a": 1.0, "b": 2.0, "c": 0.5})
        write_doc(self.fresh, {"a": 3.0, "b": 6.0, "c": 1.5})
        self.assertEqual(self.run_diff(), 0)

    def test_single_series_regression_detected(self):
        # One series 4x slower while its peers are flat: beyond the 2x gate.
        write_doc(self.base, {"a": 1.0, "b": 2.0, "c": 0.5})
        write_doc(self.fresh, {"a": 4.0, "b": 2.0, "c": 0.5})
        self.assertEqual(self.run_diff(), 1)

    def test_within_gate_slowdown_passes(self):
        # 1.5x normalized slowdown stays inside the default 2x gate.
        write_doc(self.base, {"a": 1.0, "b": 2.0, "c": 0.5})
        write_doc(self.fresh, {"a": 1.5, "b": 2.0, "c": 0.5})
        self.assertEqual(self.run_diff(), 0)

    def test_gate_factor_is_respected(self):
        write_doc(self.base, {"a": 1.0, "b": 2.0, "c": 0.5})
        write_doc(self.fresh, {"a": 1.8, "b": 2.0, "c": 0.5})
        self.assertEqual(self.run_diff("--gate-factor", "1.5"), 1)
        self.assertEqual(self.run_diff("--gate-factor", "2.0"), 0)

    def test_report_only_never_fails(self):
        write_doc(self.base, {"a": 1.0, "b": 2.0})
        write_doc(self.fresh, {"a": 40.0, "b": 2.0})
        self.assertEqual(self.run_diff("--report-only"), 0)

    def test_series_missing_from_fresh_is_not_a_failure(self):
        # A baseline series absent from the fresh run is reported but does
        # not gate (new baselines land before their bench is in every job).
        write_doc(self.base, {"a": 1.0, "gone": 2.0})
        write_doc(self.fresh, {"a": 1.0})
        self.assertEqual(self.run_diff(), 0)

    def test_new_series_in_fresh_is_ignored(self):
        # Fresh-only series (a bench gained a new measurement) cannot gate
        # against a baseline that has no entry for them.
        write_doc(self.base, {"a": 1.0})
        write_doc(self.fresh, {"a": 1.0, "brand_new": 123.0})
        self.assertEqual(self.run_diff(), 0)

    def test_no_shared_series_is_a_noop(self):
        write_doc(self.base, {"a": 1.0})
        write_doc(self.fresh, {"b": 1.0})
        self.assertEqual(self.run_diff(), 0)

    def test_zero_and_meta_series_are_filtered(self):
        # median_s == 0 entries (meta/checksum series) never divide by zero
        # and never gate.
        write_doc(self.base, {"a": 1.0, "meta_checksum": 0.0})
        write_doc(self.fresh, {"a": 1.0, "meta_checksum": 0.0})
        self.assertEqual(self.run_diff(), 0)

    def test_load_medians_skips_zero_series(self):
        write_doc(self.base, {"a": 1.0, "zero": 0.0})
        self.assertEqual(bench_diff.load_medians(self.base), {"a": 1.0})

    def test_percentile_fields_are_report_only(self):
        # A 100x p99 blowup must not gate: percentile fields are reported but
        # only median_s participates in the regression check.
        write_doc(self.base, {"a": 1.0, "b": 2.0},
                  {"a": {"queue_p50_s": 1e-4, "solve_p99_s": 1e-3}})
        write_doc(self.fresh, {"a": 1.0, "b": 2.0},
                  {"a": {"queue_p50_s": 1e-4, "solve_p99_s": 1e-1}})
        self.assertEqual(self.run_diff(), 0)

    def test_report_only_series_never_gates(self):
        # engine_overload's wall time measures load shedding, not solver
        # speed: a 50x blowup there is printed but must not fail the gate.
        write_doc(self.base, {"a": 1.0, "b": 2.0, "engine_overload": 0.1})
        write_doc(self.fresh, {"a": 1.0, "b": 2.0, "engine_overload": 5.0})
        self.assertEqual(self.run_diff(), 0)

    def test_report_only_series_does_not_skew_the_machine_scale(self):
        # With the overload series excluded from the scale median, a genuine
        # regression in a gated series is still caught even when the overload
        # series moved the other way.
        write_doc(self.base, {"a": 1.0, "b": 2.0, "c": 0.5,
                              "engine_overload": 1.0})
        write_doc(self.fresh, {"a": 4.0, "b": 2.0, "c": 0.5,
                               "engine_overload": 0.01})
        self.assertEqual(self.run_diff(), 1)

    def test_serve_series_are_report_only(self):
        # serve_load's wall time tracks the open-loop arrival schedule and
        # serve_overload's tracks deliberate shedding; neither may gate or
        # feed the machine-speed scale.
        self.assertIn("serve_load", bench_diff.REPORT_ONLY_SERIES)
        self.assertIn("serve_overload", bench_diff.REPORT_ONLY_SERIES)
        write_doc(self.base, {"a": 1.0, "b": 2.0,
                              "serve_load": 0.5, "serve_overload": 0.1})
        write_doc(self.fresh, {"a": 1.0, "b": 2.0,
                               "serve_load": 25.0, "serve_overload": 9.0})
        self.assertEqual(self.run_diff(), 0)

    def test_only_report_only_series_still_prints_and_passes(self):
        # A fresh file holding nothing but report-only series (the CI
        # bench-smoke leg runs serve_load alone) must not trip the
        # no-shared-series early-out before the trend/percentile print.
        write_doc(self.base, {"serve_load": 0.5},
                  {"serve_load": {"interactive_p99_s": 2e-3}})
        write_doc(self.fresh, {"serve_load": 0.6},
                  {"serve_load": {"interactive_p99_s": 3e-3}})
        self.assertEqual(self.run_diff(), 0)

    def test_load_percentiles_collects_suffixed_fields(self):
        write_doc(self.base, {"a": 1.0},
                  {"a": {"queue_p50_s": 2e-4, "queue_p99_s": 5e-4,
                         "jobs_per_second": 100.0}})
        self.assertEqual(bench_diff.load_percentiles(self.base),
                         {"a.queue_p50_s": 2e-4, "a.queue_p99_s": 5e-4})

    def test_percentiles_missing_from_one_side_do_not_crash(self):
        # Baselines predate the percentile fields; fresh-only (and vice
        # versa) entries are printed without a ratio and never gate.
        write_doc(self.base, {"a": 1.0})
        write_doc(self.fresh, {"a": 1.0}, {"a": {"solve_p50_s": 3e-4}})
        self.assertEqual(self.run_diff(), 0)


if __name__ == "__main__":
    unittest.main()
