#!/usr/bin/env python3
"""Merge series from one pitk-bench-v1 document into another.

Usage: bench_merge.py DEST SOURCE [SOURCE...]

The committed baseline (BENCH_engine.json) aggregates series produced by
several bench binaries (bench_engine_throughput writes it directly;
bench_serve_load writes BENCH_serve.json).  This tool folds the extra files
in: series from later SOURCEs replace same-named series in DEST, everything
else in DEST is preserved, and the result is written back to DEST with
stable key order so baseline diffs stay reviewable.

Typical baseline refresh:

    ./build/bench_engine_throughput          # writes BENCH_engine.json
    ./build/bench_serve_load                 # writes BENCH_serve.json
    scripts/bench_merge.py BENCH_engine.json BENCH_serve.json
"""

import json
import sys

SCHEMA = "pitk-bench-v1"


def merge(dest_doc, source_docs):
    """Return dest_doc with each source's series folded in (by name)."""
    for doc in (dest_doc, *source_docs):
        schema = doc.get("schema")
        if schema != SCHEMA:
            raise ValueError("expected schema %r, got %r" % (SCHEMA, schema))
    by_name = {s["name"]: s for s in dest_doc.get("series", [])}
    order = [s["name"] for s in dest_doc.get("series", [])]
    for doc in source_docs:
        for series in doc.get("series", []):
            if series["name"] not in by_name:
                order.append(series["name"])
            by_name[series["name"]] = series
    out = dict(dest_doc)
    out["series"] = [by_name[n] for n in order]
    return out


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    dest_path, source_paths = argv[0], argv[1:]
    with open(dest_path) as f:
        dest_doc = json.load(f)
    sources = []
    for p in source_paths:
        with open(p) as f:
            sources.append(json.load(f))
    merged = merge(dest_doc, sources)
    with open(dest_path, "w") as f:
        json.dump(merged, f, indent=1)
        f.write("\n")
    print("bench_merge: %s now holds %d series (+%s)"
          % (dest_path, len(merged["series"]), ", ".join(source_paths)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
