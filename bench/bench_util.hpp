#pragma once

/// \file bench_util.hpp
/// Shared infrastructure for the figure-reproduction benchmark binaries.
///
/// Every binary regenerates one figure/table of the paper's evaluation
/// (Section 5) on the *paper's* synthetic workload (Section 5.2), scaled
/// down to laptop sizes by default and overridable through environment
/// variables:
///
///   PITK_K6     steps for the n=6 problem        (paper: 5,000,000; default 100,000)
///   PITK_K48    steps for the n=48 problem       (paper:   100,000; default   1,000)
///   PITK_REPS   repetitions per configuration    (paper: 5;        default 3)
///   PITK_MAXCORES  cap on the core sweep         (default: hardware)
///
/// Binaries run under google-benchmark; a capturing reporter records the
/// per-repetition wall times so each binary can print the paper-style
/// series (and qualitative shape checks) after the standard output.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

// JSON emission (repetitions, median/p10/p90, machine info) shared with the
// always-built std::chrono benches; figure binaries can tee their captured
// series into a BENCH_*.json through bench::JsonBench.
#include "bench_json.hpp"

#include "core/associative.hpp"
#include "la/blas.hpp"
#include "core/oddeven.hpp"
#include "core/paige_saunders.hpp"
#include "kalman/rts.hpp"
#include "kalman/simulate.hpp"
#include "la/random.hpp"
#include "parallel/thread_pool.hpp"

namespace pitk::bench {

using kalman::Problem;
using la::index;

inline long env_long(const char* name, long fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atol(v) : fallback;
}

inline index k_for_n6() { return env_long("PITK_K6", 100000); }
inline index k_for_n48() { return env_long("PITK_K48", 1000); }
inline int repetitions() { return static_cast<int>(env_long("PITK_REPS", 3)); }

/// The sweep 1..min(hardware, PITK_MAXCORES), always including 1.
inline std::vector<unsigned> core_sweep() {
  const unsigned hw = par::ThreadPool::hardware_cores();
  const unsigned cap = static_cast<unsigned>(env_long("PITK_MAXCORES", hw));
  std::vector<unsigned> cores;
  for (unsigned c = 1; c <= std::min(hw, cap); ++c) cores.push_back(c);
  return cores;
}

/// All smoother variants of Figure 2, in the paper's legend order.
enum class Variant {
  OddEven,
  OddEvenNC,
  Associative,
  PaigeSaunders,
  PaigeSaundersNC,
  Kalman,
};

inline const char* variant_name(Variant v) {
  switch (v) {
    case Variant::OddEven: return "Odd-Even";
    case Variant::OddEvenNC: return "Odd-Even-NC";
    case Variant::Associative: return "Associative";
    case Variant::PaigeSaunders: return "Paige-Saunders";
    case Variant::PaigeSaundersNC: return "Paige-Saunders-NC";
    case Variant::Kalman: return "Kalman";
  }
  return "?";
}

inline bool variant_is_parallel(Variant v) {
  return v == Variant::OddEven || v == Variant::OddEvenNC || v == Variant::Associative;
}

/// Cached paper-benchmark problems (construction excluded from timing, as in
/// Section 5.2) plus the prior the conventional smoothers need.
struct Workload {
  Problem problem;          ///< full problem (step-0 observation included)
  Problem conventional;     ///< step-0 observation stripped...
  kalman::GaussianPrior prior;  ///< ...and converted to this exact prior
};

inline const Workload& workload(index n, index k) {
  static std::map<std::pair<index, index>, std::unique_ptr<Workload>> cache;
  auto& slot = cache[{n, k}];
  if (!slot) {
    slot = std::make_unique<Workload>();
    la::Rng rng(0xBE5C0DE + static_cast<std::uint64_t>(n));
    slot->problem = kalman::make_paper_benchmark(rng, n, k);
    // Orthonormal G, L = I: the step-0 observation is exactly the Gaussian
    // prior u_0 ~ N(G^T o_0, I).
    const kalman::Observation& ob0 = *slot->problem.step(0).observation;
    slot->prior.mean = la::Vector(n);
    la::gemv(1.0, ob0.G.view(), la::Trans::Yes, ob0.o.span(), 0.0, slot->prior.mean.span());
    slot->prior.cov = la::Matrix::identity(n);
    slot->conventional = slot->problem;
    slot->conventional.step(0).observation.reset();
  }
  return *slot;
}

/// Run one smoother variant once; returns a checksum so the optimizer cannot
/// elide the work.
inline double run_variant(Variant v, const Workload& w, par::ThreadPool& pool, index grain) {
  kalman::SmootherResult res;
  switch (v) {
    case Variant::OddEven:
      res = kalman::oddeven_smooth(w.problem, pool, {.compute_covariance = true, .grain = grain});
      break;
    case Variant::OddEvenNC:
      res = kalman::oddeven_smooth(w.problem, pool, {.compute_covariance = false, .grain = grain});
      break;
    case Variant::Associative:
      res = kalman::associative_smooth(w.conventional, w.prior, pool, {.grain = grain});
      break;
    case Variant::PaigeSaunders:
      res = kalman::paige_saunders_smooth(w.problem, {.compute_covariance = true});
      break;
    case Variant::PaigeSaundersNC:
      res = kalman::paige_saunders_smooth(w.problem, {.compute_covariance = false});
      break;
    case Variant::Kalman:
      res = kalman::rts_smooth(w.conventional, w.prior);
      break;
  }
  double checksum = 0.0;
  checksum += res.means.front()[0] + res.means.back()[0];
  if (res.has_covariances()) checksum += res.covariances.back()(0, 0);
  return checksum;
}

/// Reporter that tees to the console and records per-repetition wall times.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const Run& r : runs) {
      if (r.run_type != Run::RT_Iteration) continue;
      results_[r.run_name.str()].push_back(r.GetAdjustedRealTime());
    }
  }

  /// Median of the recorded repetitions for a benchmark whose registered
  /// name is `name`; google-benchmark may decorate the run name with
  /// suffixes like "/iterations:1" or "/real_time", so matching is by
  /// prefix.  Returns 0.0 when nothing matched.
  [[nodiscard]] double median_seconds(const std::string& name) const {
    const std::vector<double>* s = samples(name);
    if (s == nullptr || s->empty()) return 0.0;
    std::vector<double> v = *s;
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  }

  [[nodiscard]] const std::vector<double>* samples(const std::string& name) const {
    auto it = results_.find(name);
    if (it != results_.end()) return &it->second;
    for (const auto& [key, vals] : results_) {
      if (key.size() > name.size() && key.compare(0, name.size(), name) == 0 &&
          key[name.size()] == '/')
        return &vals;
    }
    return nullptr;
  }

  [[nodiscard]] const std::map<std::string, std::vector<double>>& all() const { return results_; }

 private:
  std::map<std::string, std::vector<double>> results_;
};

/// Standard main body: run registered benchmarks with the capturing reporter
/// then invoke `summary`.
template <class Summary>
int run_benchmarks(int argc, char** argv, Summary&& summary) {
  benchmark::Initialize(&argc, argv);
  CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  summary(reporter);
  return 0;
}

inline void print_shape_check(const char* what, bool ok) {
  std::printf("  [%s] %s\n", ok ? "OK " : "??? ", what);
}

}  // namespace pitk::bench
