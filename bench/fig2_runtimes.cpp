/// \file fig2_runtimes.cpp
/// Figure 2: running times of all six smoother variants as a function of
/// core count, for the (n=6, large k) and (n=48, smaller k) workloads of
/// Section 5.2.  Sequential variants (Kalman, Paige-Saunders, -NC) are
/// measured once (they do not use the pool); parallel variants sweep cores.
///
/// Paper shape to reproduce: parallel algorithms are slower on 1 core
/// (constant work overhead), overtake the sequential ones as cores grow,
/// and Odd-Even stays below Associative at equal core counts.

#include "bench_util.hpp"

namespace {

using namespace pitk;
using namespace pitk::bench;

struct Config {
  index n;
  index k;
};

std::vector<Config> configs() { return {{6, k_for_n6()}, {48, k_for_n48()}}; }

std::string bench_name(Variant v, const Config& c, unsigned cores) {
  return std::string("Fig2/") + variant_name(v) + "/n=" + std::to_string(c.n) +
         "/k=" + std::to_string(c.k) + "/cores=" + std::to_string(cores);
}

void register_all() {
  for (const Config& c : configs()) {
    (void)workload(c.n, c.k);  // build outside timing
    for (Variant v : {Variant::OddEven, Variant::OddEvenNC, Variant::Associative,
                      Variant::PaigeSaunders, Variant::PaigeSaundersNC, Variant::Kalman}) {
      const std::vector<unsigned> cores_list =
          variant_is_parallel(v) ? core_sweep() : std::vector<unsigned>{1};
      for (unsigned cores : cores_list) {
        benchmark::RegisterBenchmark(bench_name(v, c, cores).c_str(),
                                     [v, c, cores](benchmark::State& state) {
                                       const Workload& w = workload(c.n, c.k);
                                       par::ThreadPool pool(cores);
                                       for (auto _ : state) {
                                         benchmark::DoNotOptimize(
                                             run_variant(v, w, pool, par::default_grain));
                                       }
                                     })
            ->Unit(benchmark::kSecond)
            ->UseRealTime()
            ->Iterations(1)
            ->Repetitions(repetitions())
            ->ReportAggregatesOnly(false);
      }
    }
  }
}

void summary(const CapturingReporter& rep) {
  std::printf("\n=== Figure 2: running times (median of %d runs, seconds) ===\n", repetitions());
  for (const Config& c : configs()) {
    std::printf("\n-- n=%lld k=%lld --\n%-20s", static_cast<long long>(c.n),
                static_cast<long long>(c.k), "cores");
    for (unsigned cores : core_sweep()) std::printf("%10u", cores);
    std::printf("\n");
    for (Variant v : {Variant::OddEven, Variant::OddEvenNC, Variant::Associative,
                      Variant::PaigeSaunders, Variant::PaigeSaundersNC, Variant::Kalman}) {
      std::printf("%-20s", variant_name(v));
      for (unsigned cores : core_sweep()) {
        const unsigned eff = variant_is_parallel(v) ? cores : 1;
        const double t = rep.median_seconds(bench_name(v, c, eff));
        std::printf("%10.3f", t);
      }
      std::printf("\n");
    }

    const unsigned maxc = core_sweep().back();
    const double oe1 = rep.median_seconds(bench_name(Variant::OddEven, c, 1));
    const double oem = rep.median_seconds(bench_name(Variant::OddEven, c, maxc));
    const double as1 = rep.median_seconds(bench_name(Variant::Associative, c, 1));
    const double asm_ = rep.median_seconds(bench_name(Variant::Associative, c, maxc));
    const double ps = rep.median_seconds(bench_name(Variant::PaigeSaunders, c, 1));
    const double kal = rep.median_seconds(bench_name(Variant::Kalman, c, 1));

    std::printf("\nshape checks (paper Section 5.4):\n");
    print_shape_check("Odd-Even slower than Paige-Saunders on 1 core (work overhead)", oe1 > ps);
    print_shape_check("Associative slower than Kalman on 1 core (work overhead)", as1 > kal);
    print_shape_check("Odd-Even faster than Associative at max cores", oem < asm_);
    if (maxc > 1) {
      print_shape_check("Odd-Even speeds up with cores", oem < oe1);
      print_shape_check("Associative speeds up with cores", asm_ < as1);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  return run_benchmarks(argc, argv, summary);
}
