/// \file ablation_stability.cpp
/// Ablation for the paper's Section 6 remarks:
///
///   (1) "the normal equations can be solved in parallel using block
///       odd-even reduction ... yielding a third parallel algorithm ...
///       However, this approach is unstable and does not appear to have any
///       advantage over our new algorithm."
///   (2) the Odd-Even algorithm is conditionally backward stable: its
///       accuracy depends only on the conditioning of the input covariances.
///
/// This binary measures both: running time of Odd-Even (QR) vs the
/// normal-equations cyclic reduction at equal core counts, and the
/// stationarity residual of both as the covariance condition number grows
/// (the QR residual stays flat; the normal-equations one grows like the
/// squared condition number).

#include <cmath>

#include "bench_util.hpp"
#include "core/normal_equations.hpp"
#include "kalman/dense_reference.hpp"

namespace {

using namespace pitk;
using namespace pitk::bench;

index abl_k() { return env_long("PITK_ABL_K", std::min<long>(20000, k_for_n6())); }

std::string bench_name(const char* alg, unsigned cores) {
  return std::string("Ablation/") + alg + "/n=6/k=" + std::to_string(abl_k()) +
         "/cores=" + std::to_string(cores);
}

void register_all() {
  (void)workload(6, abl_k());
  for (unsigned cores : core_sweep()) {
    benchmark::RegisterBenchmark(bench_name("Odd-Even-NC", cores).c_str(),
                                 [cores](benchmark::State& state) {
                                   const Workload& w = workload(6, abl_k());
                                   par::ThreadPool pool(cores);
                                   for (auto _ : state)
                                     benchmark::DoNotOptimize(
                                         run_variant(Variant::OddEvenNC, w, pool, 10));
                                 })
        ->Unit(benchmark::kSecond)
        ->UseRealTime()
        ->Iterations(1)
        ->Repetitions(repetitions())
        ->ReportAggregatesOnly(false);
    benchmark::RegisterBenchmark(bench_name("Normal-Cyclic", cores).c_str(),
                                 [cores](benchmark::State& state) {
                                   const Workload& w = workload(6, abl_k());
                                   par::ThreadPool pool(cores);
                                   for (auto _ : state) {
                                     auto sol = kalman::normal_cyclic_smooth(w.problem, pool,
                                                                             {.grain = 10});
                                     benchmark::DoNotOptimize(sol.back()[0]);
                                   }
                                 })
        ->Unit(benchmark::kSecond)
        ->UseRealTime()
        ->Iterations(1)
        ->Repetitions(repetitions())
        ->ReportAggregatesOnly(false);
  }
}

/// Läuchli-style chain: each step carries a very precise observation of
/// u_1 + u_2 (variance 1/cond) next to an ordinary observation of u_1, so
/// the weighted rows are nearly collinear at scale sqrt(cond).  cond(A) ~
/// sqrt(cond); forming A^T A cancels the O(1) information against the
/// cond-sized terms — the textbook failure mode of the normal equations.
kalman::Problem conditioned_problem(double cond, index k) {
  la::Rng rng(7);
  const index n = 2;
  const la::Matrix f = la::random_orthonormal(rng, n);
  std::vector<kalman::TimeStep> steps(static_cast<std::size_t>(k + 1));
  for (index i = 0; i <= k; ++i) {
    kalman::TimeStep& s = steps[static_cast<std::size_t>(i)];
    s.n = n;
    if (i > 0) {
      kalman::Evolution e;
      e.F = f;
      e.noise = kalman::CovFactor::identity(n);
      s.evolution = std::move(e);
    }
    kalman::Observation ob;
    ob.G = la::Matrix({{1.0, 1.0}, {1.0, 0.0}});
    ob.o = la::random_gaussian_vector(rng, n);
    ob.noise = kalman::CovFactor::diagonal(la::Vector({1.0 / cond, 1.0}));
    s.observation = std::move(ob);
  }
  return kalman::Problem::from_steps(std::move(steps));
}

/// Forward error relative to the dense Householder QR oracle.  (The
/// A^T A-residual would hide the damage: cyclic reduction is backward
/// stable *for the normal equations*; its forward error carries the
/// squared condition number.)
double forward_error(const kalman::SmootherResult& ref,
                     const std::vector<la::Vector>& means) {
  double err = 0.0;
  double scale = 0.0;
  for (std::size_t i = 0; i < means.size(); ++i) {
    err = std::max(err, la::max_abs_diff(means[i].span(), ref.means[i].span()));
    scale = std::max(scale, la::norm_max(ref.means[i].span()));
  }
  return err / (1.0 + scale);
}

void accuracy_sweep() {
  std::printf("\n=== Forward error vs observation-accuracy disparity "
              "(k=64, n=3, vs dense QR oracle) ===\n");
  std::printf("%-12s %-18s %-18s\n", "disparity", "Odd-Even (QR)", "Normal-Cyclic");
  par::ThreadPool pool(par::ThreadPool::hardware_cores());
  double qr_worst = 0.0;
  bool ne_ever_worse = false;
  for (double cond : {1e0, 1e4, 1e8, 1e12}) {
    kalman::Problem p = conditioned_problem(cond, 64);
    kalman::SmootherResult ref = kalman::dense_smooth(p, false);
    kalman::SmootherResult qr =
        kalman::oddeven_smooth(p, pool, {.compute_covariance = false});
    const double err_qr = forward_error(ref, qr.means);
    double err_ne = std::numeric_limits<double>::infinity();
    try {
      std::vector<la::Vector> ne = kalman::normal_cyclic_smooth(p, pool, {});
      err_ne = forward_error(ref, ne);
    } catch (const std::exception&) {
      // Pivot breakdown: squared conditioning defeated the LU entirely.
    }
    std::printf("%-12.0e %-18.2e %-18.2e\n", cond, err_qr, err_ne);
    qr_worst = std::max(qr_worst, err_qr);
    if (err_ne > 100.0 * err_qr) ne_ever_worse = true;
  }
  std::printf("\nshape checks (paper Section 6):\n");
  print_shape_check("Odd-Even stays near working accuracy across conditioning",
                    qr_worst < 1e-7);
  print_shape_check("normal equations lose ~cond(A) extra digits (unstable route)",
                    ne_ever_worse);
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  return run_benchmarks(argc, argv, [](const CapturingReporter& rep) {
    std::printf("\n=== Ablation: Odd-Even (QR) vs normal-equations cyclic reduction ===\n");
    std::printf("%-16s", "cores");
    for (unsigned cores : core_sweep()) std::printf("%10u", cores);
    std::printf("\n");
    for (const char* alg : {"Odd-Even-NC", "Normal-Cyclic"}) {
      std::printf("%-16s", alg);
      for (unsigned cores : core_sweep())
        std::printf("%10.3f", rep.median_seconds(bench_name(alg, cores)));
      std::printf("\n");
    }
    accuracy_sweep();
  });
}
