/// \file serve_load.cpp
/// Open-loop load benchmark of the sharded serving tier (BENCH_serve.json;
/// merged into the committed BENCH_engine.json baseline).
///
/// Three phases, all of which gate the exit status:
///
///  1. Agreement: for every backend, small jobs routed through a *batched*
///     tenant class (deadline-flushed, no explicit flush() call) must agree
///     with a direct engine submit to 1e-10.
///  2. serve_load: Poisson arrivals at a target QPS with a mixed tenant
///     population (interactive / standard / besteffort) against a fresh
///     tier; reports per-class end-to-end p50/p99 latency (stamped when the
///     caller-visible future resolves, so buffer wait and forwarding are
///     included), offered vs achieved QPS, and shed rate.  Exact accounting
///     (completed + shed + failed == submitted) is an invariant.
///  3. serve_overload: a burst far over capacity with tight per-class
///     admission budgets; the class SLO ordering (besteffort sheds at least
///     as hard as interactive) is an invariant.
///
/// Both series are report-only in bench_diff (their wall time measures load
/// generation, not solver speed).  Knobs:
///
///   PITK_SHARDS            tier shards                (default 2)
///   PITK_SERVE_QPS         offered load, phase 2      (default 2000)
///   PITK_SERVE_REQUESTS    requests per rep, phase 2  (default 2000)
///   PITK_SERVE_TENANTS     tenant population          (default 48)
///   PITK_OVERLOAD_REQUESTS burst size, phase 3        (default 1200)

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "kalman/simulate.hpp"
#include "la/blas.hpp"
#include "la/random.hpp"
#include "obs/histogram.hpp"
#include "pitk/serve.hpp"

namespace {

using namespace pitk;
using Clock = std::chrono::steady_clock;
using engine::Backend;
using la::index;
using serve::TenantClass;

long env_long(const char* name, long fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atol(v) : fallback;
}

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

double max_deviation(const kalman::SmootherResult& got, const kalman::SmootherResult& ref) {
  double d = 0.0;
  for (std::size_t i = 0; i < ref.means.size(); ++i)
    d = std::max(d, la::max_abs_diff(got.means[i].span(), ref.means[i].span()));
  if (got.has_covariances() && ref.has_covariances())
    for (std::size_t i = 0; i < ref.covariances.size(); ++i)
      d = std::max(d, la::max_abs_diff(got.covariances[i].view(), ref.covariances[i].view()));
  return d;
}

/// Phase 1: batched-through-the-tier vs direct-to-the-engine, per backend.
bool check_batched_agreement(index n, index k) {
  serve::ServeOptions so;
  so.shards = 2;
  // Aggressive batching so the agreement path really exercises the buffer:
  // a large size cut plus a short deadline forces deadline flushes.
  so.classes[serve::tenant_class_index(TenantClass::Standard)].flush_max_jobs = 64;
  so.classes[serve::tenant_class_index(TenantClass::Standard)].flush_deadline_seconds = 0.002;
  serve::ServingTier tier(so);

  bool ok = true;
  int b = 0;
  for (const engine::BackendInfo& info : engine::all_backends()) {
    const Backend backend = info.id;
    la::Rng rng(0x5E21AD + static_cast<std::uint64_t>(b++));
    kalman::Problem p = kalman::make_paper_benchmark(rng, n, k);
    const kalman::GaussianPrior prior = kalman::diffuse_prior(n);

    engine::JobOptions ref_opts;
    ref_opts.backend = backend;
    ref_opts.prior = prior;
    serve::TenantHandle t =
        tier.tenant("agreement-" + std::string(info.name), TenantClass::Standard);
    const kalman::SmootherResult ref =
        tier.shard_engine(t.shard()).submit(p, ref_opts).get().result;

    serve::Request req;
    req.problem = p;
    req.prior = prior;
    engine::SubmitOptions opts;
    opts.backend = backend;
    // No flush() call: the pump's deadline flush must deliver this.
    std::future<engine::JobResult> fut = tier.submit(t, std::move(req), opts);
    const kalman::SmootherResult got = fut.get().result;

    const double dev = max_deviation(got, ref);
    if (!(dev <= 1e-10)) {
      std::fprintf(stderr, "serve_load: backend %s batched-vs-direct deviation %.3e > 1e-10\n",
                   info.name, dev);
      ok = false;
    }
  }
  return ok;
}

struct ClassAccounting {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  std::uint64_t failed = 0;  ///< deadline/cancel/other exceptional completions
};

/// An in-flight request; the collector stamps its completion.
struct Outstanding {
  std::future<engine::JobResult> fut;
  Clock::time_point submitted;
  int cls = 0;
};

/// Sweep `inflight` (under `mu`), stamping completed futures into the
/// per-class histograms/accounting.  Returns the number still pending.
std::size_t sweep(std::vector<Outstanding>& inflight, std::mutex& mu,
                  obs::Histogram* lat, ClassAccounting* acct) {
  std::lock_guard<std::mutex> lk(mu);
  for (std::size_t i = 0; i < inflight.size();) {
    Outstanding& o = inflight[i];
    if (o.fut.wait_for(std::chrono::seconds(0)) != std::future_status::ready) {
      ++i;
      continue;
    }
    try {
      (void)o.fut.get();
      lat[o.cls].record(seconds_since(o.submitted));
      ++acct[o.cls].completed;
    } catch (const engine::SolveError& e) {
      if (e.code() == engine::SolveErrorCode::QueueFull)
        ++acct[o.cls].shed;
      else
        ++acct[o.cls].failed;
    } catch (...) {
      ++acct[o.cls].failed;
    }
    inflight[i] = std::move(inflight.back());
    inflight.pop_back();
  }
  return inflight.size();
}

TenantClass class_of_tenant(long tenant) {
  // 25% interactive, 50% standard, 25% besteffort.
  const long r = tenant % 4;
  return r == 0 ? TenantClass::Interactive
                : (r == 3 ? TenantClass::BestEffort : TenantClass::Standard);
}

}  // namespace

int main() {
  const index n = static_cast<index>(env_long("PITK_SERVE_N", 4));
  const index k = static_cast<index>(env_long("PITK_SERVE_K", 48));
  const long requests = env_long("PITK_SERVE_REQUESTS", 2000);
  const long tenants = env_long("PITK_SERVE_TENANTS", 48);
  const double qps = static_cast<double>(env_long("PITK_SERVE_QPS", 2000));
  const long overload_requests = env_long("PITK_OVERLOAD_REQUESTS", 1200);
  const int reps = bench::json_repetitions();
  bench::JsonBench out("BENCH_serve.json");

  bool ok = check_batched_agreement(n, k);
  std::printf("serve_load: batched-vs-direct agreement %s\n", ok ? "OK (5 backends)" : "FAILED");

  // Problem pool, built once (construction excluded from timing).
  la::Rng rng(0x5EAF00D);
  std::vector<kalman::Problem> pool;
  const kalman::GaussianPrior prior = kalman::diffuse_prior(n);
  for (int i = 0; i < 32; ++i) {
    la::Rng r = rng.split();
    pool.push_back(kalman::make_paper_benchmark(r, n, k));
  }

  // ---- Phase 2: open-loop Poisson load at the target QPS ----------------
  std::vector<double> load_samples;
  obs::Histogram lat[serve::num_tenant_classes];
  ClassAccounting acct[serve::num_tenant_classes];
  double achieved_qps = 0.0;
  for (int r = 0; r < reps; ++r) {
    serve::ServeOptions so = serve::ServeOptions::env_defaults();
    if (env_long("PITK_SHARDS", 0) == 0) so.shards = 2;
    serve::ServingTier tier(so);
    std::vector<serve::TenantHandle> handles;
    for (long t = 0; t < tenants; ++t)
      handles.push_back(tier.tenant("tenant-" + std::to_string(t), class_of_tenant(t)));

    std::vector<Outstanding> inflight;
    std::mutex mu;
    std::atomic<bool> done{false};
    std::thread collector([&] {
      while (!done.load(std::memory_order_acquire)) {
        (void)sweep(inflight, mu, lat, acct);
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
      while (sweep(inflight, mu, lat, acct) != 0)
        std::this_thread::sleep_for(std::chrono::microseconds(50));
    });

    std::mt19937_64 arrivals(0xA221 + static_cast<std::uint64_t>(r));
    std::exponential_distribution<double> gap(qps);
    const auto t0 = Clock::now();
    auto next = t0;
    for (long i = 0; i < requests; ++i) {
      std::this_thread::sleep_until(next);
      next += std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(gap(arrivals)));
      const long tenant = static_cast<long>(arrivals() % static_cast<std::uint64_t>(tenants));
      const serve::TenantHandle& h = handles[static_cast<std::size_t>(tenant)];
      serve::Request req;
      req.problem = pool[static_cast<std::size_t>(i) % pool.size()];
      req.prior = prior;
      const int c = serve::tenant_class_index(h.tenant_class());
      ++acct[c].submitted;
      Outstanding o;
      o.submitted = Clock::now();
      o.cls = c;
      o.fut = tier.submit(h, std::move(req));
      std::lock_guard<std::mutex> lk(mu);
      inflight.push_back(std::move(o));
    }
    tier.wait_idle();
    done.store(true, std::memory_order_release);
    collector.join();
    load_samples.push_back(seconds_since(t0));
    achieved_qps = static_cast<double>(requests) / load_samples.back();
  }

  std::uint64_t total_submitted = 0, total_completed = 0, total_shed = 0, total_failed = 0;
  for (const ClassAccounting& a : acct) {
    total_submitted += a.submitted;
    total_completed += a.completed;
    total_shed += a.shed;
    total_failed += a.failed;
    if (a.completed + a.shed + a.failed != a.submitted) {
      std::fprintf(stderr, "serve_load: accounting mismatch (%llu + %llu + %llu != %llu)\n",
                   static_cast<unsigned long long>(a.completed),
                   static_cast<unsigned long long>(a.shed),
                   static_cast<unsigned long long>(a.failed),
                   static_cast<unsigned long long>(a.submitted));
      ok = false;
    }
  }
  const double shed_rate =
      total_submitted == 0 ? 0.0
                           : static_cast<double>(total_shed) / static_cast<double>(total_submitted);
  out.record("serve_load", load_samples,
             {{"requests", static_cast<double>(requests)},
              {"tenants", static_cast<double>(tenants)},
              {"k", static_cast<double>(k)},
              {"n", static_cast<double>(n)},
              {"offered_qps", qps},
              {"achieved_qps", achieved_qps},
              {"shed_rate", shed_rate},
              {"completed", static_cast<double>(total_completed)},
              {"interactive_p50_s", lat[0].quantile(0.5)},
              {"interactive_p99_s", lat[0].quantile(0.99)},
              {"standard_p50_s", lat[1].quantile(0.5)},
              {"standard_p99_s", lat[1].quantile(0.99)},
              {"besteffort_p50_s", lat[2].quantile(0.5)},
              {"besteffort_p99_s", lat[2].quantile(0.99)}});
  std::printf(
      "serve_load: %ld req @ %g qps  achieved %.0f qps  shed %.1f%%  "
      "p99 interactive %.2fms standard %.2fms besteffort %.2fms\n",
      requests, qps, achieved_qps, shed_rate * 100.0, lat[0].quantile(0.99) * 1e3,
      lat[1].quantile(0.99) * 1e3, lat[2].quantile(0.99) * 1e3);

  // ---- Phase 3: burst overload; class SLO ordering is the invariant ------
  std::vector<double> over_samples;
  ClassAccounting oacct[serve::num_tenant_classes];
  obs::Histogram olat[serve::num_tenant_classes];
  for (int r = 0; r < reps; ++r) {
    serve::ServeOptions so;
    so.shards = 2;
    // Tight budgets so the burst trips admission quickly; interactive still
    // blocks briefly (and therefore sheds last).
    so.classes[0].max_queue_wait_seconds = 2e-3;
    so.classes[0].max_block_seconds = 2e-3;
    so.classes[1].max_queue_wait_seconds = 1e-3;
    so.classes[2].max_queue_wait_seconds = 0.4e-3;
    serve::ServingTier tier(so);
    std::vector<serve::TenantHandle> handles;
    for (long t = 0; t < tenants; ++t)
      handles.push_back(tier.tenant("tenant-" + std::to_string(t), class_of_tenant(t)));

    // Warm the per-shard seconds/job estimate (admission needs completions).
    for (unsigned s = 0; s < tier.num_shards(); ++s) {
      engine::JobOptions warm;
      warm.prior = prior;
      (void)tier.shard_engine(s).submit(pool[0], warm).get();
    }

    std::vector<Outstanding> inflight;
    std::mutex mu;
    const auto t0 = Clock::now();
    for (long i = 0; i < overload_requests; ++i) {
      const serve::TenantHandle& h = handles[static_cast<std::size_t>(i % tenants)];
      serve::Request req;
      req.problem = pool[static_cast<std::size_t>(i) % pool.size()];
      req.prior = prior;
      const int c = serve::tenant_class_index(h.tenant_class());
      ++oacct[c].submitted;
      Outstanding o;
      o.submitted = Clock::now();
      o.cls = c;
      o.fut = tier.submit(h, std::move(req));
      std::lock_guard<std::mutex> lk(mu);
      inflight.push_back(std::move(o));
    }
    tier.wait_idle();
    while (sweep(inflight, mu, olat, oacct) != 0)
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    over_samples.push_back(seconds_since(t0));
  }

  auto rate = [](const ClassAccounting& a) {
    return a.submitted == 0 ? 0.0
                            : static_cast<double>(a.shed) / static_cast<double>(a.submitted);
  };
  const double shed_int = rate(oacct[0]);
  const double shed_std = rate(oacct[1]);
  const double shed_be = rate(oacct[2]);
  std::printf("serve_overload: shed interactive %.1f%%  standard %.1f%%  besteffort %.1f%%\n",
              shed_int * 100.0, shed_std * 100.0, shed_be * 100.0);
  // The SLO ordering under overload: besteffort must shed at least as hard
  // as interactive (interactive blocks briefly and has the largest budget).
  if (shed_be + 1e-12 < shed_int) {
    std::fprintf(stderr, "serve_overload: class ordering violated (besteffort %.3f < interactive %.3f)\n",
                 shed_be, shed_int);
    ok = false;
  }
  for (const ClassAccounting& a : oacct) {
    if (a.completed + a.shed + a.failed != a.submitted) {
      std::fprintf(stderr, "serve_overload: accounting mismatch\n");
      ok = false;
    }
  }
  out.record("serve_overload", over_samples,
             {{"requests", static_cast<double>(overload_requests)},
              {"shed_rate_interactive", shed_int},
              {"shed_rate_standard", shed_std},
              {"shed_rate_besteffort", shed_be}});

  out.write();
  return ok ? 0 : 1;
}
