#pragma once

/// \file bench_json.hpp
/// Dependency-free JSON benchmark harness shared by the bench binaries.
///
/// Every benchmark records named series of repeated wall-time samples; the
/// harness derives robust statistics (median / p10 / p90, min, max, mean),
/// attaches machine/build metadata, and writes one JSON document so CI and
/// the repo's BENCH_*.json trajectory stay machine-readable.  Knobs:
///
///   PITK_BENCH_REPS  repetitions per configuration (default 5; CI uses 1)
///   PITK_BENCH_OUT   output path override (default: the name the binary picks)
///
/// The google-benchmark-based figure binaries keep their own reporter; this
/// harness is for the always-built std::chrono benches (kernel microbench,
/// engine throughput) that the CI smoke job runs.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace pitk::bench {

inline long json_env_long(const char* name, long fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atol(v) : fallback;
}

inline int json_repetitions() { return static_cast<int>(json_env_long("PITK_BENCH_REPS", 5)); }

/// Wall time of one call, in seconds.
template <class Fn>
double time_once(Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// Linear-interpolated percentile (q in [0, 1]) of an unsorted sample set.
inline double percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

/// One benchmark series: repeated wall-time samples plus free-form numeric
/// metrics (flops, dimensions, derived rates).
struct JsonSeries {
  std::string name;
  std::vector<double> seconds;
  std::vector<std::pair<std::string, double>> metrics;
};

class JsonBench {
 public:
  explicit JsonBench(std::string default_path) : path_(std::move(default_path)) {
    if (const char* o = std::getenv("PITK_BENCH_OUT")) path_ = o;
  }

  JsonSeries& series(const std::string& name) {
    for (JsonSeries& s : series_)
      if (s.name == name) return s;
    series_.push_back({name, {}, {}});
    return series_.back();
  }

  void record(const std::string& name, std::vector<double> seconds,
              std::vector<std::pair<std::string, double>> metrics = {}) {
    JsonSeries& s = series(name);
    s.seconds = std::move(seconds);
    s.metrics = std::move(metrics);
  }

  [[nodiscard]] double median_seconds(const std::string& name) {
    return percentile(series(name).seconds, 0.5);
  }

  /// Write the document; returns false (and prints) on I/O failure.
  [[nodiscard]] bool write() const {
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_json: cannot open %s for writing\n", path_.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"schema\": \"pitk-bench-v1\",\n");
    std::fprintf(f, "  \"machine\": {\n");
    std::fprintf(f, "    \"hardware_cores\": %u,\n", par::ThreadPool::hardware_cores());
    std::fprintf(f, "    \"default_concurrency\": %u,\n", par::ThreadPool::default_concurrency());
    // PITK_THREADS both as the raw env string and as the parsed number (0 =
    // unset/invalid); default_concurrency above is the worker count every
    // default-sized pool actually runs with.  Committed BENCH_*.json
    // baselines from different machines are only comparable when these
    // match (benches that pin a different pool size record it as a
    // per-series "threads" metric).
    std::fprintf(f, "    \"pitk_threads_env\": \"%s\",\n", env_or("PITK_THREADS", ""));
    std::fprintf(f, "    \"pitk_threads\": %ld,\n", json_env_long("PITK_THREADS", 0));
#ifdef NDEBUG
    std::fprintf(f, "    \"build\": \"Release\",\n");
#else
    std::fprintf(f, "    \"build\": \"Debug\",\n");
#endif
#if defined(__VERSION__)
    std::fprintf(f, "    \"compiler\": \"%s\",\n", __VERSION__);
#else
    std::fprintf(f, "    \"compiler\": \"unknown\",\n");
#endif
    std::fprintf(f, "    \"pointer_bits\": %d\n", static_cast<int>(sizeof(void*) * 8));
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"repetitions\": %d,\n", json_repetitions());
    std::fprintf(f, "  \"series\": [\n");
    for (std::size_t i = 0; i < series_.size(); ++i) {
      const JsonSeries& s = series_[i];
      std::fprintf(f, "    {\"name\": \"%s\",", escape(s.name).c_str());
      std::fprintf(f, " \"median_s\": %.9e, \"p10_s\": %.9e, \"p90_s\": %.9e,",
                   percentile(s.seconds, 0.5), percentile(s.seconds, 0.1),
                   percentile(s.seconds, 0.9));
      std::fprintf(f, " \"min_s\": %.9e, \"max_s\": %.9e, \"mean_s\": %.9e,",
                   percentile(s.seconds, 0.0), percentile(s.seconds, 1.0), mean(s.seconds));
      for (const auto& [k, v] : s.metrics)
        std::fprintf(f, " \"%s\": %.9e,", escape(k).c_str(), v);
      std::fprintf(f, " \"samples_s\": [");
      for (std::size_t r = 0; r < s.seconds.size(); ++r)
        std::fprintf(f, "%s%.9e", r == 0 ? "" : ", ", s.seconds[r]);
      std::fprintf(f, "]}%s\n", i + 1 == series_.size() ? "" : ",");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("bench_json: wrote %s (%zu series)\n", path_.c_str(), series_.size());
    return true;
  }

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  static const char* env_or(const char* name, const char* fallback) {
    const char* v = std::getenv(name);
    return v != nullptr ? v : fallback;
  }

  static double mean(const std::vector<double>& v) {
    if (v.empty()) return 0.0;
    double s = 0.0;
    for (double x : v) s += x;
    return s / static_cast<double>(v.size());
  }

  /// Minimal escaping: the names we emit are identifiers, but stay safe.
  static std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (static_cast<unsigned char>(c) < 0x20) continue;
      out.push_back(c);
    }
    return out;
  }

  std::string path_;
  std::vector<JsonSeries> series_;
};

}  // namespace pitk::bench
