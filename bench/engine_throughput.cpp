/// \file engine_throughput.cpp
/// Batched-engine throughput versus the one-job-at-a-time loop.
///
/// Workload: B independent small paper-benchmark problems (Section 5.2
/// shape, scaled to service-request size).  The sequential baseline solves
/// them in a plain loop with the same auto-selected backend the engine's
/// serial path would use; the engine run submits all B as a batch over its
/// shared pool (PITK_THREADS-way by default) and drains the futures.
///
/// Also verifies, end to end through the public solve interface, that every
/// registered backend agrees with the dense reference — the bench exits
/// nonzero on disagreement, so CI can run it as a smoke test.
///
/// The session_resmooth series measure the streaming serving pattern: a
/// long-lived session appends a few steps and re-smooths.  The incremental
/// path splices only the newly finalized bidiagonal prefix blocks into the
/// session's ResmoothCache (O(appended) assembly + back-substitution/SelInv
/// sweep, allocation-free when warm); the full baseline re-smooths the same
/// track from scratch (cold Paige-Saunders factor + solve + SelInv).  The
/// bench exits nonzero if the two disagree beyond 1e-10 or the incremental
/// path fails a conservative speedup floor.
///
/// The nonlinear series measure Gauss-Newton tenants through the engine:
/// B pendulum tracks submitted via submit_nonlinear_batch (each job's outer
/// loop is one engine job whose inner linearized solves reuse the worker's
/// warm SolverCache) against a plain sequential gauss_newton_smooth loop.
/// The bench exits nonzero if the engine-routed result deviates from the
/// direct solver beyond 1e-10.
///
///   PITK_ENGINE_JOBS      number of problems B     (default 256)
///   PITK_ENGINE_K         steps per problem        (default 96)
///   PITK_ENGINE_N         state dimension          (default 4)
///   PITK_THREADS          engine pool size         (default: hardware)
///   PITK_RESMOOTH_K       session base steps       (default 4096)
///   PITK_RESMOOTH_APPEND  appended steps/re-smooth (default 16)
///   PITK_NONLINEAR_JOBS   nonlinear tenants        (default 48)
///   PITK_NONLINEAR_K      steps per tenant         (default 96)
///   PITK_OVERLOAD_JOBS    overload submissions     (default 512)
///   PITK_OVERLOAD_K       overload steps/job       (default 48)
///   PITK_OVERLOAD_QUEUE   overload queue bound     (default 32)
///   PITK_RECOVER_K        recovery journal steps   (default 2048)
///
/// The engine_overload series over-submits open-loop against a bounded
/// Reject queue and reports accepted/rejected counts plus the accepted
/// jobs' queue-wait p50/p99; its invariants (exact accounting, queue
/// high-water <= cap) gate the exit status, its wall time is report-only.
///
/// The session_recover series measures recover_all() over a k-step durable
/// session journal: worst case (compaction disabled, the full observation
/// stream replays) as the timed samples, with the compacted journal's
/// recovery time (snapshot restore + <=256-record tail) as a report field.
/// Report-only in bench_diff — it measures journal replay, not solver speed
/// — but the recovered session's smooth must agree with the uninterrupted
/// one to 1e-10 or the bench exits nonzero.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include <filesystem>
#include <string>

#include "bench_json.hpp"
#include "core/gauss_newton.hpp"
#include "core/paige_saunders.hpp"
#include "engine/durable.hpp"
#include "engine/engine.hpp"
#include "engine/session.hpp"
#include "io/session_store.hpp"
#include "kalman/simulate.hpp"
#include "la/blas.hpp"
#include "la/random.hpp"
#include "obs/histogram.hpp"

namespace {

using namespace pitk;
using engine::Backend;
using la::index;

long env_long(const char* name, long fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atol(v) : fallback;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// Max abs deviation of a result from the reference (means and covariances).
double max_deviation(const kalman::SmootherResult& got, const kalman::SmootherResult& ref) {
  double d = 0.0;
  for (std::size_t i = 0; i < ref.means.size(); ++i)
    d = std::max(d, la::max_abs_diff(got.means[i].span(), ref.means[i].span()));
  if (got.has_covariances() && ref.has_covariances())
    for (std::size_t i = 0; i < ref.covariances.size(); ++i)
      d = std::max(d, la::max_abs_diff(got.covariances[i].view(), ref.covariances[i].view()));
  return d;
}

/// Feed states (from, to] of a prebuilt track into a streaming session.
void feed_track(engine::Session& s, const kalman::Problem& track, index from, index to) {
  for (index i = from + 1; i <= to; ++i) {
    const kalman::TimeStep& st = track.step(i);
    if (st.evolution) s.evolve(st.evolution->F, st.evolution->c, st.evolution->noise);
    if (st.observation) s.observe(st.observation->G, st.observation->o, st.observation->noise);
  }
}

/// One sweep point of the incremental re-smoothing bench: a session at k0
/// steps appends `append` steps per repetition and re-smooths both ways.
/// Returns false on disagreement (or, at the criterion point, on a speedup
/// below the conservative floor).
bool bench_session_resmooth(bench::JsonBench& out, engine::SmootherEngine& eng,
                            const kalman::Problem& track, index k0, index append,
                            const char* series, const char* series_full, int reps,
                            bool enforce_speedup) {
  engine::Session s = eng.open_session(track.state_dim(0));
  // Step 0 carries an observation in the paper-benchmark track; replay it.
  if (track.step(0).observation) {
    const kalman::Observation& ob = *track.step(0).observation;
    s.observe(ob.G, ob.o, ob.noise);
  }
  feed_track(s, track, 0, k0);
  kalman::SmootherResult inc;
  s.smooth_into(inc, true);  // prime: warms the ResmoothCache and `inc`

  std::vector<double> inc_samples;
  std::vector<double> full_samples;
  double worst = 0.0;
  for (int r = 0; r < reps; ++r) {
    const index len = k0 + static_cast<index>(r + 1) * append;
    feed_track(s, track, len - append, len);
    inc_samples.push_back(bench::time_once([&] { s.smooth_into(inc, true); }));

    // Cold full smooth of the identical prefix problem (fresh factor, fresh
    // result storage — what re-smoothing costs without the cached prefix).
    std::vector<kalman::TimeStep> steps(track.steps().begin(),
                                        track.steps().begin() + len + 1);
    const kalman::Problem sub = kalman::Problem::from_steps(std::move(steps));
    kalman::SmootherResult cold;
    full_samples.push_back(bench::time_once([&] { cold = kalman::paige_saunders_smooth(sub); }));
    worst = std::max(worst, max_deviation(inc, cold));
  }

  const double sec_inc = bench::percentile(inc_samples, 0.5);
  const double sec_full = bench::percentile(full_samples, 0.5);
  const double speedup = sec_full / sec_inc;
  out.record(series, inc_samples,
             {{"k", static_cast<double>(k0)},
              {"append", static_cast<double>(append)},
              {"speedup_vs_full", speedup}});
  out.record(series_full, full_samples,
             {{"k", static_cast<double>(k0)}, {"append", static_cast<double>(append)}});

  const bool agree = worst < 1e-10;
  // The ≥5x criterion is demonstrated by the committed BENCH_engine.json;
  // the hard exit floor is 3x so a heavily shared CI runner cannot flake.
  const bool fast = !enforce_speedup || speedup >= 3.0;
  std::printf("  [%s] append %4lld: incremental %8.3f ms  full %8.3f ms  %5.1fx  |diff| %.2e\n",
              agree && fast ? "OK " : "???", static_cast<long long>(append), 1e3 * sec_inc,
              1e3 * sec_full, speedup, worst);
  return agree && fast;
}

/// The truncated-delta criterion (PR 10): a warm default session appending
/// ONE step per re-smooth against an exact_resmooth() session riding the
/// identical stream — the exact session pays the full spliced backward pass
/// (the pre-truncation serving cost), the default session stops its delta
/// propagation at the decay bound and rewrites only the truncation window.
/// O(window) vs O(k) per re-smooth, so the enforced floor is a hard 10x at
/// the 4096-step serving shape; results must still agree to 1e-10.
bool bench_session_resmooth_delta(bench::JsonBench& out, engine::SmootherEngine& eng,
                                  const kalman::Problem& track, index k0, int reps) {
  engine::Session del = eng.open_session(track.state_dim(0));
  engine::Session ex =
      eng.open_session(track.state_dim(0), engine::SessionOptions{}.exact_resmooth());
  for (engine::Session* s : {&del, &ex}) {
    if (track.step(0).observation) {
      const kalman::Observation& ob = *track.step(0).observation;
      s->observe(ob.G, ob.o, ob.noise);
    }
    feed_track(*s, track, 0, k0);
  }
  kalman::SmootherResult dres;
  kalman::SmootherResult xres;
  del.smooth_into(dres, true);  // prime both caches and both storages
  ex.smooth_into(xres, true);

  std::vector<double> delta_samples;
  std::vector<double> exact_samples;
  double worst = 0.0;
  for (int r = 0; r < reps; ++r) {
    const index len = k0 + static_cast<index>(r) + 1;
    feed_track(del, track, len - 1, len);
    feed_track(ex, track, len - 1, len);
    delta_samples.push_back(bench::time_once([&] { del.smooth_into(dres, true); }));
    exact_samples.push_back(bench::time_once([&] { ex.smooth_into(xres, true); }));
    worst = std::max(worst, max_deviation(dres, xres));
  }

  const double sec_delta = bench::percentile(delta_samples, 0.5);
  const double sec_exact = bench::percentile(exact_samples, 0.5);
  const double speedup = sec_exact / sec_delta;
  const engine::SessionStats st = del.stats();
  const double skipped_per_pass =
      st.truncated_resmooths == 0
          ? 0.0
          : static_cast<double>(st.steps_truncation_skipped) /
                static_cast<double>(st.truncated_resmooths);
  out.record("session_resmooth_delta", delta_samples,
             {{"k", static_cast<double>(k0)},
              {"append", 1.0},
              {"speedup_vs_exact", speedup},
              {"truncated_passes", static_cast<double>(st.truncated_resmooths)},
              {"states_skipped_per_pass", skipped_per_pass}});
  out.record("session_resmooth_delta_exact", exact_samples,
             {{"k", static_cast<double>(k0)}, {"append", 1.0}});

  const bool agree = worst < 1e-10;
  const bool truncating = st.truncated_resmooths > 0;
  const bool fast = speedup >= 10.0;
  std::printf(
      "  [%s] delta    append    1: truncated %8.3f ms  exact %8.3f ms  %5.1fx  |diff| %.2e"
      "  (skips %.0f states/pass)\n",
      agree && fast && truncating ? "OK " : "???", 1e3 * sec_delta, 1e3 * sec_exact, speedup,
      worst, skipped_per_pass);
  return agree && fast && truncating;
}

/// The shared noisy-pendulum tenant (kalman/simulate.cpp) with a per-tenant
/// start angle so jobs are not identical.
kalman::NonlinearModel pendulum_model(la::Rng& rng, index k) {
  const double theta0 = 0.4 + 0.2 * rng.uniform();
  return kalman::make_pendulum_benchmark(rng, k, theta0);
}

std::vector<la::Vector> pendulum_init(index k) {
  return std::vector<la::Vector>(static_cast<std::size_t>(k + 1), la::Vector({0.1, 0.0}));
}

/// Nonlinear tenants through the engine vs a sequential Gauss-Newton loop.
/// Returns false when the engine-routed result disagrees with the direct
/// solver beyond 1e-10.
bool bench_nonlinear(bench::JsonBench& out, int reps) {
  const index jobs = env_long("PITK_NONLINEAR_JOBS", 48);
  const index k = env_long("PITK_NONLINEAR_K", 96);
  std::printf("\nnonlinear tenants: B=%lld Gauss-Newton jobs, k=%lld steps, n=2\n",
              static_cast<long long>(jobs), static_cast<long long>(k));

  la::Rng rng(0x901111);
  std::vector<kalman::NonlinearModel> models;
  models.reserve(static_cast<std::size_t>(jobs));
  for (index b = 0; b < jobs; ++b) {
    la::Rng job_rng = rng.split();
    models.push_back(pendulum_model(job_rng, k));
  }
  engine::NonlinearJobOptions opts;
  opts.gn.tolerance = 1e-12;

  // Sequential baseline: the pre-engine serving pattern, one tenant at a
  // time monopolizing a serial Gauss-Newton solve.
  std::vector<double> seq_samples;
  double seq_checksum = 0.0;
  la::index seq_iters = 0;
  {
    par::ThreadPool serial(1);
    for (int r = 0; r < reps; ++r) {
      seq_checksum = 0.0;
      seq_iters = 0;
      const auto t0 = std::chrono::steady_clock::now();
      for (const kalman::NonlinearModel& m : models) {
        kalman::GaussNewtonResult res = gauss_newton_smooth(m, pendulum_init(k), serial, opts.gn);
        seq_checksum += res.states.back()[0];
        seq_iters += res.iterations;
      }
      seq_samples.push_back(seconds_since(t0));
    }
  }

  // Engine-routed: every tenant's outer loop is one engine job; inner
  // linearized solves reuse the executing worker's warm SolverCache.
  std::vector<double> eng_samples;
  double eng_checksum = 0.0;
  double iters_per_job = 0.0;
  unsigned concurrency = 0;
  engine::SmootherEngine eng;
  concurrency = eng.concurrency();
  {
    std::vector<engine::NonlinearJob> warmup;
    for (const kalman::NonlinearModel& m : models) warmup.push_back({m, pendulum_init(k)});
    auto futs = eng.submit_nonlinear_batch(std::move(warmup), opts);
    eng.wait_idle();
    for (auto& f : futs) (void)f.get();
  }
  // Per-job latency distributions over the timed reps (bench-local
  // histograms, not the global registry: warm-up jobs stay excluded).
  obs::Histogram queue_hist;
  obs::Histogram solve_hist;
  for (int r = 0; r < reps; ++r) {
    std::vector<engine::NonlinearJob> batch;
    for (const kalman::NonlinearModel& m : models) batch.push_back({m, pendulum_init(k)});
    eng_checksum = 0.0;
    la::index iters = 0;
    const auto t0 = std::chrono::steady_clock::now();
    auto futs = eng.submit_nonlinear_batch(std::move(batch), opts);
    eng.wait_idle();
    for (auto& f : futs) {
      engine::JobResult jr = f.get();
      eng_checksum += jr.result.means.back()[0];
      iters += jr.metrics.outer_iterations;
      queue_hist.record(jr.metrics.queue_seconds);
      solve_hist.record(jr.metrics.solve_seconds);
    }
    eng_samples.push_back(seconds_since(t0));
    iters_per_job = static_cast<double>(iters) / static_cast<double>(jobs);
  }

  const double sec_seq = bench::percentile(seq_samples, 0.5);
  const double sec_eng = bench::percentile(eng_samples, 0.5);
  out.record("sequential_nonlinear_loop", seq_samples,
             {{"jobs", static_cast<double>(jobs)},
              {"k", static_cast<double>(k)},
              {"jobs_per_second", static_cast<double>(jobs) / sec_seq}});
  out.record("engine_nonlinear_batch", eng_samples,
             {{"jobs", static_cast<double>(jobs)},
              {"k", static_cast<double>(k)},
              {"threads", static_cast<double>(concurrency)},
              {"jobs_per_second", static_cast<double>(jobs) / sec_eng},
              {"outer_iterations_per_job", iters_per_job},
              {"queue_p50_s", queue_hist.quantile(0.5)},
              {"queue_p99_s", queue_hist.quantile(0.99)},
              {"solve_p50_s", solve_hist.quantile(0.5)},
              {"solve_p99_s", solve_hist.quantile(0.99)}});
  std::printf("  sequential GN   : %8.3f s  (%8.1f jobs/s)\n", sec_seq,
              static_cast<double>(jobs) / sec_seq);
  std::printf("  engine, %2u-way  : %8.3f s  (%8.1f jobs/s)  speedup %.2fx, %.1f iters/job\n",
              concurrency, sec_eng, static_cast<double>(jobs) / sec_eng, sec_seq / sec_eng,
              iters_per_job);

  // Engine-vs-direct agreement on one tenant, end to end (means to 1e-10).
  par::ThreadPool serial(1);
  kalman::GaussNewtonResult direct =
      gauss_newton_smooth(models.front(), pendulum_init(k), serial, opts.gn);
  engine::JobResult routed = eng.submit_nonlinear({models.front(), pendulum_init(k)}, opts).get();
  double worst = 0.0;
  for (std::size_t i = 0; i < direct.states.size(); ++i)
    worst = std::max(worst,
                     la::max_abs_diff(routed.result.means[i].span(), direct.states[i].span()));
  const bool agree = worst < 1e-10;
  std::printf("  [%s] engine vs direct gauss_newton_smooth |diff| %.2e  (checksum drift %.2e)\n",
              agree ? "OK " : "???", worst, std::abs(seq_checksum - eng_checksum));
  return agree;
}

/// Open-loop over-submission against a bounded Reject queue: B jobs pushed
/// as fast as the submit loop runs, far beyond what the pool drains, so the
/// engine must shed load at the door.  Reported: accepted/rejected counts,
/// the accepted jobs' queue-wait p50/p99 (the tail the bound protects) and
/// the observed queue high-water.  The series is report-only in bench_diff
/// (its wall time measures shedding, not solver speed); the hard exit
/// criteria are the invariants: every job is accounted exactly once and the
/// queue never exceeds its cap.
bool bench_engine_overload(bench::JsonBench& out, int reps) {
  const index jobs = env_long("PITK_OVERLOAD_JOBS", 512);
  const index k = env_long("PITK_OVERLOAD_K", 48);
  const index n = env_long("PITK_OVERLOAD_N", 4);
  const std::size_t max_q =
      static_cast<std::size_t>(env_long("PITK_OVERLOAD_QUEUE", 32));
  std::printf("\nengine overload: B=%lld open-loop jobs, k=%lld, bounded queue %zu (reject)\n",
              static_cast<long long>(jobs), static_cast<long long>(k), max_q);

  la::Rng rng(0x0E7210AD);
  std::vector<kalman::Problem> problems;
  problems.reserve(static_cast<std::size_t>(jobs));
  for (index b = 0; b < jobs; ++b) {
    la::Rng job_rng = rng.split();
    problems.push_back(kalman::make_paper_benchmark(job_rng, n, k));
  }

  std::vector<double> samples;
  obs::Histogram accepted_queue_hist;
  std::uint64_t accepted_total = 0;
  std::uint64_t rejected_total = 0;
  std::uint64_t high_water = 0;
  unsigned concurrency = 0;
  bool invariants_ok = true;
  for (int r = 0; r < reps; ++r) {
    // Fresh engine per repetition: each sample sees an identical cold queue.
    engine::SmootherEngine eng(
        {.max_queued_jobs = max_q, .queue_policy = engine::QueuePolicy::Reject});
    concurrency = eng.concurrency();
    std::vector<kalman::Problem> batch = problems;  // construction excluded
    std::vector<std::future<engine::JobResult>> futures;
    futures.reserve(static_cast<std::size_t>(jobs));
    const auto t0 = std::chrono::steady_clock::now();
    for (index b = 0; b < jobs; ++b)
      futures.push_back(eng.submit(std::move(batch[static_cast<std::size_t>(b)]), {}));
    eng.wait_idle();
    samples.push_back(seconds_since(t0));
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;
    for (auto& f : futures) {
      try {
        const engine::JobResult jr = f.get();
        ++accepted;
        accepted_queue_hist.record(jr.metrics.queue_seconds);
      } catch (const engine::SolveError&) {
        ++rejected;
      }
    }
    accepted_total += accepted;
    rejected_total += rejected;
    const engine::EngineStats st = eng.stats();
    high_water = std::max(high_water, st.queue_high_water);
    invariants_ok = invariants_ok &&
                    accepted + rejected == static_cast<std::uint64_t>(jobs) &&
                    st.jobs_completed == accepted && st.jobs_rejected == rejected &&
                    st.queue_high_water <= max_q;
  }

  const double per_rep = 1.0 / static_cast<double>(reps);
  out.record("engine_overload", samples,
             {{"jobs", static_cast<double>(jobs)},
              {"k", static_cast<double>(k)},
              {"n", static_cast<double>(n)},
              {"threads", static_cast<double>(concurrency)},
              {"max_queued_jobs", static_cast<double>(max_q)},
              {"accepted_per_rep", static_cast<double>(accepted_total) * per_rep},
              {"rejected_per_rep", static_cast<double>(rejected_total) * per_rep},
              {"queue_high_water", static_cast<double>(high_water)},
              {"accepted_queue_p50_s", accepted_queue_hist.quantile(0.5)},
              {"accepted_queue_p99_s", accepted_queue_hist.quantile(0.99)}});
  std::printf("  accepted %7.1f / rejected %7.1f per rep  queue high-water %llu (cap %zu)\n",
              static_cast<double>(accepted_total) * per_rep,
              static_cast<double>(rejected_total) * per_rep,
              static_cast<unsigned long long>(high_water), max_q);
  std::printf("  accepted queue wait p50 %8.3f ms  p99 %8.3f ms\n",
              1e3 * accepted_queue_hist.quantile(0.5),
              1e3 * accepted_queue_hist.quantile(0.99));
  std::printf("  [%s] accepted + rejected == submitted, high-water <= cap\n",
              invariants_ok ? "OK " : "???");
  return invariants_ok;
}

/// Crash-recovery cost: rebuild a k-step durable session with recover_all().
/// Timed samples are the worst case (compaction off — the whole journal
/// replays through the normal append path); the compacted journal's recovery
/// (snapshot + bounded tail) rides along as a report field.  Gate: the
/// recovered session's smooth agrees with the uninterrupted session's to
/// 1e-10, for both journals.
bool bench_session_recover(bench::JsonBench& out, engine::SmootherEngine& eng, index n,
                           int reps) {
  const index k = env_long("PITK_RECOVER_K", 2048);
  std::printf("\nsession recovery: k=%lld journaled steps, n=%lld, recover_all()\n",
              static_cast<long long>(k), static_cast<long long>(n));
  la::Rng rng(0x3EC0);
  const kalman::Problem track = kalman::make_paper_benchmark(rng, n, k);

  const std::string base =
      (std::filesystem::temp_directory_path() / "pitk_bench_recover").string();
  auto make_store = [&base](const char* name, index compact_every) {
    io::DurabilityOptions o;
    o.dir = base + "/" + name;
    std::filesystem::remove_all(o.dir);
    o.flush = io::FlushPolicy::EveryAppend;
    o.compact_every = compact_every;
    return io::SessionStore(o);
  };
  io::SessionStore journal_store = make_store("journal", /*compact_every=*/0);
  io::SessionStore compact_store = make_store("compacted", /*compact_every=*/256);

  // Stream the same track into both stores, keep the uninterrupted answer,
  // then drop the handles: from here on only the files know the sessions.
  kalman::SmootherResult ref;
  std::uint64_t journal_bytes = 0;
  {
    engine::Session live = eng.open_durable_session(journal_store, "bench", n);
    engine::Session live_c = eng.open_durable_session(compact_store, "bench", n);
    for (engine::Session* s : {&live, &live_c}) {
      if (track.step(0).observation) {
        const kalman::Observation& ob = *track.step(0).observation;
        s->observe(ob.G, ob.o, ob.noise);
      }
      feed_track(*s, track, 0, k);
    }
    live.smooth_into(ref, false);
    journal_bytes = std::filesystem::file_size(journal_store.path_for("bench"));
  }

  // recover_all() is read-only on an untorn journal, so repetitions see
  // identical bytes; each rep pays the full scan + decode + replay.
  auto time_recover = [&](io::SessionStore& store, std::vector<double>& samples,
                          std::uint64_t& replayed) {
    engine::RecoveredSessions rec;
    for (int r = 0; r < reps; ++r) {
      const auto t0 = std::chrono::steady_clock::now();
      rec = eng.recover_all(store, {});
      samples.push_back(seconds_since(t0));
    }
    replayed = rec.replayed_records;
    if (rec.linear.size() != 1 || !rec.failed.empty()) return 1e300;
    kalman::SmootherResult got;
    rec.linear[0].second.smooth_into(got, false);
    return max_deviation(got, ref);
  };
  std::vector<double> journal_samples;
  std::vector<double> compact_samples;
  std::uint64_t journal_replayed = 0;
  std::uint64_t compact_replayed = 0;
  const double journal_diff = time_recover(journal_store, journal_samples, journal_replayed);
  const double compact_diff = time_recover(compact_store, compact_samples, compact_replayed);

  const double sec_journal = bench::percentile(journal_samples, 0.5);
  const double sec_compact = bench::percentile(compact_samples, 0.5);
  out.record("session_recover", journal_samples,
             {{"k", static_cast<double>(k)},
              {"n", static_cast<double>(n)},
              {"journal_bytes", static_cast<double>(journal_bytes)},
              {"replayed_records", static_cast<double>(journal_replayed)},
              {"records_per_second",
               static_cast<double>(journal_replayed) / sec_journal},
              {"compacted_recover_s", sec_compact},
              {"compacted_replayed_records", static_cast<double>(compact_replayed)}});
  std::printf("  full journal    : %8.3f ms  (%lld records, %.1f MiB, %.0f records/s)\n",
              1e3 * sec_journal, static_cast<long long>(journal_replayed),
              static_cast<double>(journal_bytes) / (1024.0 * 1024.0),
              static_cast<double>(journal_replayed) / sec_journal);
  std::printf("  compacted       : %8.3f ms  (snapshot + %lld-record tail)\n",
              1e3 * sec_compact, static_cast<long long>(compact_replayed));
  const bool agree = journal_diff < 1e-10 && compact_diff < 1e-10;
  std::printf("  [%s] recovered smooth vs uninterrupted |diff| %.2e / %.2e\n",
              agree ? "OK " : "???", journal_diff, compact_diff);
  std::filesystem::remove_all(base);
  return agree;
}

bool check_backend_agreement() {
  std::printf("backend agreement vs dense reference (n=4, k=60):\n");
  la::Rng rng(0xA9EE);
  kalman::Problem p = kalman::make_paper_benchmark(rng, 4, 60);
  kalman::GaussianPrior prior = kalman::diffuse_prior(4);
  par::ThreadPool pool(4);
  const kalman::SmootherResult ref =
      engine::solve_with(Backend::DenseReference, p, prior, pool);
  bool all_ok = true;
  for (const engine::BackendInfo& info : engine::all_backends()) {
    const kalman::SmootherResult got = engine::solve_with(info.id, p, prior, pool);
    const double d = max_deviation(got, ref);
    const bool ok = d < 1e-6;
    all_ok = all_ok && ok;
    std::printf("  [%s] %-16s max |diff| = %.3e\n", ok ? "OK " : "???", info.name, d);
  }
  return all_ok;
}

}  // namespace

int main() {
  const index jobs = env_long("PITK_ENGINE_JOBS", 256);
  const index k = env_long("PITK_ENGINE_K", 96);
  const index n = env_long("PITK_ENGINE_N", 4);

  std::printf("engine throughput: B=%lld jobs, k=%lld steps, n=%lld\n",
              static_cast<long long>(jobs), static_cast<long long>(k),
              static_cast<long long>(n));

  // Problem construction is excluded from timing, as in the paper.
  std::vector<kalman::Problem> problems;
  problems.reserve(static_cast<std::size_t>(jobs));
  la::Rng rng(0xE6617E);
  for (index b = 0; b < jobs; ++b) {
    la::Rng job_rng = rng.split();
    problems.push_back(kalman::make_paper_benchmark(job_rng, n, k));
  }

  // Repeated measurements through the shared JSON harness; the paper-style
  // single-pass numbers below use the medians.
  const int reps = bench::json_repetitions();
  bench::JsonBench out("BENCH_engine.json");
  std::vector<double> seq_samples;
  std::vector<double> eng_samples;
  std::vector<double> warm_samples;
  double checksum_seq = 0.0;
  double checksum_eng = 0.0;
  double checksum_warm = 0.0;
  std::size_t workspace_peak = 0;
  double allocs_per_job_cold = 0.0;
  double allocs_per_job_warm = 0.0;
  engine::EngineStats st;
  unsigned concurrency = 0;
  // Per-job latency distributions over the timed reps (bench-local
  // histograms, not the global registry: warm-up and other series stay
  // excluded).  p50/p99 land in the JSON as report-only fields.
  obs::Histogram queue_hist;
  obs::Histogram solve_hist;
  obs::Histogram warm_queue_hist;
  obs::Histogram warm_solve_hist;

  // Sequential baseline: one job at a time, serial solver.
  {
    par::ThreadPool serial(1);
    for (int r = 0; r < reps; ++r) {
      checksum_seq = 0.0;
      const auto t_seq = std::chrono::steady_clock::now();
      for (const kalman::Problem& p : problems) {
        const kalman::SmootherResult res =
            engine::solve_with(Backend::Auto, p, std::nullopt, serial);
        checksum_seq += res.means.back()[0];
      }
      seq_samples.push_back(seconds_since(t_seq));
    }
  }

  // Batched engine: all jobs in flight over the shared pool.  One engine
  // serves every repetition AND an untimed warm-up batch first, so the timed
  // reps measure warm-path throughput (per-worker SolverCaches and Workspace
  // arenas populated) rather than calibration + pool spin-up + cold heap
  // growth.  The cold/warm split is visible in the allocations-per-job
  // figures recorded below.
  {
    engine::SmootherEngine eng;
    concurrency = eng.concurrency();
    {
      std::vector<kalman::Problem> warmup = problems;
      auto futures = eng.submit_batch(std::move(warmup), {});
      eng.wait_idle();
      std::uint64_t allocs = 0;
      for (auto& f : futures) allocs += f.get().metrics.allocations;
      allocs_per_job_cold = static_cast<double>(allocs) / static_cast<double>(jobs);
    }
    for (int r = 0; r < reps; ++r) {
      std::vector<kalman::Problem> batch = problems;  // construction excluded
      checksum_eng = 0.0;
      const auto t_eng = std::chrono::steady_clock::now();
      auto futures = eng.submit_batch(std::move(batch), {});
      eng.wait_idle();  // the submitting thread works as one of the pool's lanes
      for (auto& f : futures) {
        engine::JobResult jr = f.get();
        checksum_eng += jr.result.means.back()[0];
        workspace_peak = std::max(workspace_peak, jr.metrics.workspace_high_water_bytes);
        queue_hist.record(jr.metrics.queue_seconds);
        solve_hist.record(jr.metrics.solve_seconds);
      }
      eng_samples.push_back(seconds_since(t_eng));
    }

    // Warm into-storage serving: results land in caller-owned storage that
    // is reused across repetitions, so a warm worker touches zero heap per
    // job (JobOptions::into — the steady-state pattern for tenants that
    // re-smooth the same track shape).
    std::vector<kalman::SmootherResult> storage(static_cast<std::size_t>(jobs));
    std::uint64_t warm_allocs = 0;
    std::uint64_t warm_jobs = 0;
    for (int r = 0; r < reps + 1; ++r) {  // rep 0 warms the storage, untimed
      checksum_warm = 0.0;
      std::vector<kalman::Problem> batch = problems;  // construction excluded
      std::vector<std::future<engine::JobResult>> futures;
      futures.reserve(static_cast<std::size_t>(jobs));
      const auto t_warm = std::chrono::steady_clock::now();
      for (index b = 0; b < jobs; ++b) {
        engine::JobOptions jo;
        jo.into = &storage[static_cast<std::size_t>(b)];
        futures.push_back(eng.submit(std::move(batch[static_cast<std::size_t>(b)]), jo));
      }
      eng.wait_idle();
      for (auto& f : futures) {
        const engine::JobResult jr = f.get();
        if (r > 0) {
          warm_allocs += jr.metrics.allocations;
          ++warm_jobs;
          warm_queue_hist.record(jr.metrics.queue_seconds);
          warm_solve_hist.record(jr.metrics.solve_seconds);
        }
      }
      for (const kalman::SmootherResult& res : storage) checksum_warm += res.means.back()[0];
      if (r > 0) warm_samples.push_back(seconds_since(t_warm));
    }
    allocs_per_job_warm =
        warm_jobs == 0 ? 0.0 : static_cast<double>(warm_allocs) / static_cast<double>(warm_jobs);
    st = eng.stats();
  }

  const double sec_seq = bench::percentile(seq_samples, 0.5);
  const double sec_eng = bench::percentile(eng_samples, 0.5);
  const double sec_warm = bench::percentile(warm_samples, 0.5);
  const double tp_seq = static_cast<double>(jobs) / sec_seq;
  const double tp_eng = static_cast<double>(jobs) / sec_eng;
  const double tp_warm = static_cast<double>(jobs) / sec_warm;
  out.record("sequential_loop", seq_samples,
             {{"jobs", static_cast<double>(jobs)},
              {"k", static_cast<double>(k)},
              {"n", static_cast<double>(n)},
              {"jobs_per_second", tp_seq}});
  out.record("engine_batched", eng_samples,
             {{"jobs", static_cast<double>(jobs)},
              {"k", static_cast<double>(k)},
              {"n", static_cast<double>(n)},
              {"threads", static_cast<double>(concurrency)},
              {"jobs_per_second", tp_eng},
              {"workspace_peak_bytes", static_cast<double>(workspace_peak)},
              {"allocations_per_job_cold", allocs_per_job_cold},
              {"calibrated_small_job_flops", engine::calibrated_small_job_flops()},
              {"calibrated_gemm_gflops", engine::calibrated_gemm_flops_per_second() * 1e-9},
              {"queue_p50_s", queue_hist.quantile(0.5)},
              {"queue_p99_s", queue_hist.quantile(0.99)},
              {"solve_p50_s", solve_hist.quantile(0.5)},
              {"solve_p99_s", solve_hist.quantile(0.99)}});
  out.record("engine_batched_warm", warm_samples,
             {{"jobs", static_cast<double>(jobs)},
              {"k", static_cast<double>(k)},
              {"n", static_cast<double>(n)},
              {"threads", static_cast<double>(concurrency)},
              {"jobs_per_second", tp_warm},
              {"allocations_per_job", allocs_per_job_warm},
              {"queue_p50_s", warm_queue_hist.quantile(0.5)},
              {"queue_p99_s", warm_queue_hist.quantile(0.99)},
              {"solve_p50_s", warm_solve_hist.quantile(0.5)},
              {"solve_p99_s", warm_solve_hist.quantile(0.99)}});
  std::printf("\n  sequential loop : %8.3f s  (%8.1f jobs/s, median of %d)\n", sec_seq, tp_seq,
              reps);
  std::printf("  engine, %2u-way  : %8.3f s  (%8.1f jobs/s)  speedup %.2fx\n",
              concurrency, sec_eng, tp_eng, sec_seq / sec_eng);
  std::printf("  warm into-store : %8.3f s  (%8.1f jobs/s)  %.2f allocs/job (cold %.1f)\n",
              sec_warm, tp_warm, allocs_per_job_warm, allocs_per_job_cold);
  std::printf("  workspace peak  : %8.1f KiB per worker arena\n",
              static_cast<double>(workspace_peak) / 1024.0);
  std::printf("  mean queue wait : %8.3f ms\n",
              st.jobs_completed == 0
                  ? 0.0
                  : 1e3 * st.total_queue_seconds / static_cast<double>(st.jobs_completed));
  std::printf("  small/large jobs: %llu / %llu\n",
              static_cast<unsigned long long>(st.jobs_small),
              static_cast<unsigned long long>(st.jobs_large));
  for (const engine::BackendInfo& info : engine::all_backends()) {
    const auto c = st.per_backend[engine::backend_index(info.id)];
    if (c != 0)
      std::printf("  backend %-16s %llu jobs\n", info.name,
                  static_cast<unsigned long long>(c));
  }
  std::printf("  checksum drift  : %.3e (warm %.3e)\n", std::abs(checksum_seq - checksum_eng),
              std::abs(checksum_seq - checksum_warm));

  // The throughput criterion is about thread scaling, so it is only
  // enforceable where 4+ threads map to 4+ actual cores.
  const bool enforce_speedup = concurrency >= 4 && par::ThreadPool::hardware_cores() >= 4;
  const bool speedup_ok = !enforce_speedup || tp_eng >= tp_seq;
  std::printf("  [%s] batched >= sequential at 4+ threads%s\n", speedup_ok ? "OK " : "???",
              enforce_speedup ? "" : " (not enforced: <4 threads or <4 cores)");

  // Incremental session re-smoothing: appended-steps sweep around the
  // serving shape (4096-step track, 16 appended steps per re-smooth).
  bool resmooth_ok = true;
  {
    const index k0 = env_long("PITK_RESMOOTH_K", 4096);
    const index append = env_long("PITK_RESMOOTH_APPEND", 16);
    const index sweep[] = {1, append, 256};
    index total = k0;
    for (index a : sweep) total = std::max(total, k0 + static_cast<index>(reps) * a);
    std::printf("\nsession re-smoothing: k=%lld base steps, n=%lld, incremental vs cold full\n",
                static_cast<long long>(k0), static_cast<long long>(n));
    la::Rng rng_rs(0x5E5510);
    const kalman::Problem track = kalman::make_paper_benchmark(rng_rs, n, total);
    engine::SmootherEngine seng({.threads = 1});
    resmooth_ok &= bench_session_resmooth(out, seng, track, k0, sweep[0],
                                          "session_resmooth_a1", "session_resmooth_a1_full",
                                          reps, false);
    resmooth_ok &= bench_session_resmooth(out, seng, track, k0, sweep[1], "session_resmooth",
                                          "session_resmooth_full", reps, true);
    resmooth_ok &= bench_session_resmooth(out, seng, track, k0, sweep[2],
                                          "session_resmooth_a256", "session_resmooth_a256_full",
                                          reps, false);
    resmooth_ok &= bench_session_resmooth_delta(out, seng, track, k0, reps);
  }

  // Nonlinear tenants: Gauss-Newton outer loops as engine jobs.
  const bool nonlinear_ok = bench_nonlinear(out, reps);

  // Overload: open-loop over-submission against the bounded queue.
  const bool overload_ok = bench_engine_overload(out, reps);

  // Crash recovery: recover_all() over full and compacted journals.
  bool recover_ok = true;
  {
    engine::SmootherEngine reng({.threads = 1});
    recover_ok = bench_session_recover(out, reng, n, reps);
  }

  std::printf("\n");
  const bool agree = check_backend_agreement();
  const bool wrote = out.write();
  return (agree && speedup_ok && resmooth_ok && nonlinear_ok && overload_ok && recover_ok &&
          wrote)
             ? 0
             : 1;
}
