/// \file fig4_microbench.cpp
/// Figure 4: the embarrassingly-parallel micro-benchmark that characterizes
/// the hardware and the runtime, with the paper's four phases:
///
///   1. allocate k step structures (pointer array)
///   2. allocate a 2n-by-n matrix per step
///   3. fill every matrix with A_ij = i + j
///   4. QR-factorize every matrix
///
/// Each phase is one parallel_for with block size 8 (as in Section 5.3).
/// Paper shape: the QR phase scales nearly linearly; the allocation phases
/// scale poorly (allocator contention / memory bandwidth) but are cheap.

#include <memory>

#include "bench_util.hpp"
#include "la/qr.hpp"

namespace {

using namespace pitk;
using namespace pitk::bench;

constexpr index kBlock = 8;

struct Step {
  std::unique_ptr<la::Matrix> a;
  std::vector<double> tau;
};

index micro_n() { return env_long("PITK_MICRO_N", 48); }
index micro_k() { return env_long("PITK_MICRO_K", 4000); }

std::string bench_name(const char* phase, unsigned cores) {
  return std::string("Fig4/") + phase + "/n=" + std::to_string(micro_n()) +
         "/k=" + std::to_string(micro_k()) + "/cores=" + std::to_string(cores);
}

/// Shared across phases so later phases operate on phase-1/2 results.
std::vector<std::unique_ptr<Step>>& steps() {
  static std::vector<std::unique_ptr<Step>> s;
  return s;
}

void phase_allocate_structs(par::ThreadPool& pool) {
  auto& s = steps();
  s.clear();
  s.resize(static_cast<std::size_t>(micro_k()));
  par::parallel_for(pool, 0, micro_k(), kBlock,
                    [&](index i) { s[static_cast<std::size_t>(i)] = std::make_unique<Step>(); });
}

void phase_allocate_matrices(par::ThreadPool& pool) {
  const index n = micro_n();
  auto& s = steps();
  par::parallel_for(pool, 0, micro_k(), kBlock, [&, n](index i) {
    Step& st = *s[static_cast<std::size_t>(i)];
    st.a = std::make_unique<la::Matrix>(2 * n, n);
    st.tau.assign(static_cast<std::size_t>(n), 0.0);
  });
}

void phase_fill(par::ThreadPool& pool) {
  const index n = micro_n();
  auto& s = steps();
  par::parallel_for(pool, 0, micro_k(), kBlock, [&, n](index idx) {
    la::Matrix& a = *s[static_cast<std::size_t>(idx)]->a;
    for (index j = 0; j < n; ++j)
      for (index i = 0; i < 2 * n; ++i) a(i, j) = static_cast<double>(i + j);
  });
}

void phase_qr(par::ThreadPool& pool) {
  auto& s = steps();
  par::parallel_for(pool, 0, micro_k(), kBlock, [&](index idx) {
    Step& st = *s[static_cast<std::size_t>(idx)];
    la::qr_factor(st.a->view(), st.tau);
  });
}

using PhaseFn = void (*)(par::ThreadPool&);

struct Phase {
  const char* name;
  PhaseFn fn;
};

constexpr Phase kPhases[] = {
    {"AllocateStructure", &phase_allocate_structs},
    {"AllocateMatrix", &phase_allocate_matrices},
    {"FillMatrix", &phase_fill},
    {"QRFactorization", &phase_qr},
};

void register_all() {
  for (unsigned cores : core_sweep()) {
    for (const Phase& ph : kPhases) {
      benchmark::RegisterBenchmark(bench_name(ph.name, cores).c_str(),
                                   [ph, cores](benchmark::State& state) {
                                     par::ThreadPool pool(cores);
                                     for (auto _ : state) {
                                       state.PauseTiming();
                                       // Earlier phases provide this phase's input.
                                       for (const Phase& prev : kPhases) {
                                         if (prev.fn == ph.fn) break;
                                         prev.fn(pool);
                                       }
                                       state.ResumeTiming();
                                       ph.fn(pool);
                                       state.PauseTiming();
                                       if (ph.fn == kPhases[0].fn) steps().clear();
                                       state.ResumeTiming();
                                     }
                                   })
          ->Unit(benchmark::kMillisecond)
          ->UseRealTime()
          ->Iterations(1)
          ->Repetitions(repetitions())
          ->ReportAggregatesOnly(false);
    }
  }
}

void summary(const CapturingReporter& rep) {
  std::printf("\n=== Figure 4: micro-benchmark speedups (vs 1 core), n=%lld k=%lld, block=8 ===\n",
              static_cast<long long>(micro_n()), static_cast<long long>(micro_k()));
  std::printf("%-20s", "cores");
  for (unsigned cores : core_sweep()) std::printf("%8u", cores);
  std::printf("\n");
  double qr_best = 0.0;
  for (const Phase& ph : kPhases) {
    const double t1 = rep.median_seconds(bench_name(ph.name, 1));
    std::printf("%-20s", ph.name);
    for (unsigned cores : core_sweep()) {
      const double tc = rep.median_seconds(bench_name(ph.name, cores));
      const double s = tc > 0.0 ? t1 / tc : 0.0;
      std::printf("%8.2f", s);
      if (std::string(ph.name) == "QRFactorization") qr_best = std::max(qr_best, s);
    }
    std::printf("\n");
  }
  std::printf("\nshape checks:\n");
  if (core_sweep().back() > 1)
    print_shape_check("QR phase achieves speedup > 1 (compute-bound, scales best)",
                      qr_best > 1.0);
  else
    std::printf("  (single core available: speedups degenerate)\n");
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  return run_benchmarks(argc, argv, summary);
}
