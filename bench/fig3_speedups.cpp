/// \file fig3_speedups.cpp
/// Figure 3: speedups of the three parallel smoothers (Odd-Even,
/// Odd-Even-NC, Associative) relative to their own 1-core running time, for
/// both Section 5.2 workloads.
///
/// Paper shape to reproduce: speedups grow with cores; Odd-Even scales at
/// least as well as Associative; n=48 scales somewhat better than n=6
/// (better computation-to-communication ratio).

#include "bench_util.hpp"

namespace {

using namespace pitk;
using namespace pitk::bench;

struct Config {
  index n;
  index k;
};

std::vector<Config> configs() { return {{6, k_for_n6()}, {48, k_for_n48()}}; }

std::string bench_name(Variant v, const Config& c, unsigned cores) {
  return std::string("Fig3/") + variant_name(v) + "/n=" + std::to_string(c.n) +
         "/k=" + std::to_string(c.k) + "/cores=" + std::to_string(cores);
}

constexpr Variant kParallel[] = {Variant::OddEven, Variant::OddEvenNC, Variant::Associative};

void register_all() {
  for (const Config& c : configs()) {
    (void)workload(c.n, c.k);
    for (Variant v : kParallel) {
      for (unsigned cores : core_sweep()) {
        benchmark::RegisterBenchmark(bench_name(v, c, cores).c_str(),
                                     [v, c, cores](benchmark::State& state) {
                                       const Workload& w = workload(c.n, c.k);
                                       par::ThreadPool pool(cores);
                                       for (auto _ : state) {
                                         benchmark::DoNotOptimize(
                                             run_variant(v, w, pool, par::default_grain));
                                       }
                                     })
            ->Unit(benchmark::kSecond)
            ->UseRealTime()
            ->Iterations(1)
            ->Repetitions(repetitions())
            ->ReportAggregatesOnly(false);
      }
    }
  }
}

void summary(const CapturingReporter& rep) {
  std::printf("\n=== Figure 3: speedups relative to the same code on 1 core ===\n");
  for (const Config& c : configs()) {
    std::printf("\n-- n=%lld k=%lld --\n%-16s", static_cast<long long>(c.n),
                static_cast<long long>(c.k), "cores");
    for (unsigned cores : core_sweep()) std::printf("%8u", cores);
    std::printf("\n");
    double oe_best = 0.0;
    double assoc_best = 0.0;
    for (Variant v : kParallel) {
      const double t1 = rep.median_seconds(bench_name(v, c, 1));
      std::printf("%-16s", variant_name(v));
      for (unsigned cores : core_sweep()) {
        const double tc = rep.median_seconds(bench_name(v, c, cores));
        const double s = tc > 0.0 ? t1 / tc : 0.0;
        std::printf("%8.2f", s);
        if (v == Variant::OddEven) oe_best = std::max(oe_best, s);
        if (v == Variant::Associative) assoc_best = std::max(assoc_best, s);
      }
      std::printf("\n");
    }
    std::printf("\nshape checks:\n");
    if (core_sweep().back() > 1) {
      print_shape_check("Odd-Even achieves speedup > 1", oe_best > 1.0);
      print_shape_check("Odd-Even speedup >= Associative speedup", oe_best >= assoc_best * 0.9);
    } else {
      std::printf("  (single core available: speedup sweep degenerate)\n");
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  return run_benchmarks(argc, argv, summary);
}
