/// \file fig5_variability.cpp
/// Figure 5: distribution of Odd-Even running times under the randomized
/// work-stealing scheduler, on 1 core and on all cores.  The paper runs 100
/// repetitions and plots histograms whose horizontal span is 20% of the
/// median; it observes variation up to ±2.4% (many cores) and < 0.9%
/// (1 core, scheduler never invoked).
///
/// PITK_RUNS overrides the repetition count (default 25 to keep the default
/// suite quick; set 100 for the paper's protocol).

#include <cmath>

#include "bench_util.hpp"

namespace {

using namespace pitk;
using namespace pitk::bench;

int runs() { return static_cast<int>(env_long("PITK_RUNS", 25)); }
index fig5_n() { return env_long("PITK_FIG5_N", 48); }
index fig5_k() { return env_long("PITK_FIG5_K", k_for_n48()); }

std::string bench_name(unsigned cores) {
  return "Fig5/Odd-Even/n=" + std::to_string(fig5_n()) + "/k=" + std::to_string(fig5_k()) +
         "/cores=" + std::to_string(cores);
}

std::vector<unsigned> fig5_cores() {
  const unsigned maxc = core_sweep().back();
  if (maxc == 1) return {1};
  return {1, maxc};
}

void register_all() {
  (void)workload(fig5_n(), fig5_k());
  for (unsigned cores : fig5_cores()) {
    benchmark::RegisterBenchmark(bench_name(cores).c_str(),
                                 [cores](benchmark::State& state) {
                                   const Workload& w = workload(fig5_n(), fig5_k());
                                   par::ThreadPool pool(cores);
                                   for (auto _ : state) {
                                     benchmark::DoNotOptimize(
                                         run_variant(Variant::OddEven, w, pool,
                                                     par::default_grain));
                                   }
                                 })
        ->Unit(benchmark::kSecond)
        ->UseRealTime()
        ->Iterations(1)
        ->Repetitions(runs())
        ->ReportAggregatesOnly(false);
  }
}

void print_histogram(const std::vector<double>& samples) {
  std::vector<double> v = samples;
  std::sort(v.begin(), v.end());
  const double median = v[v.size() / 2];
  // 20% span centered on the median, 20 buckets — the paper's layout.
  const double lo = median * 0.9;
  const double hi = median * 1.1;
  constexpr int nbuckets = 20;
  std::vector<int> buckets(nbuckets, 0);
  int outliers = 0;
  double max_dev = 0.0;
  for (double t : v) {
    max_dev = std::max(max_dev, std::abs(t - median) / median);
    int b = static_cast<int>((t - lo) / (hi - lo) * nbuckets);
    if (b < 0 || b >= nbuckets) {
      ++outliers;
      continue;
    }
    buckets[static_cast<std::size_t>(b)]++;
  }
  for (int b = 0; b < nbuckets; ++b) {
    const double left = lo + (hi - lo) * b / nbuckets;
    std::printf("  %8.4fs |", left);
    for (int q = 0; q < buckets[static_cast<std::size_t>(b)]; ++q) std::printf("#");
    std::printf("\n");
  }
  std::printf("  median %.4fs, max |deviation| %.2f%%, outliers beyond +-10%%: %d\n",
              median, 100.0 * max_dev, outliers);
}

void summary(const CapturingReporter& rep) {
  std::printf("\n=== Figure 5: run-time distribution of Odd-Even (%d runs, span = 20%% of median) ===\n",
              runs());
  double dev1 = 0.0;
  double devmax = 0.0;
  for (unsigned cores : fig5_cores()) {
    std::printf("\n-- %u core(s) --\n", cores);
    const std::vector<double>* s = rep.samples(bench_name(cores));
    if (s == nullptr || s->empty()) {
      std::printf("  (no samples)\n");
      continue;
    }
    print_histogram(*s);
    std::vector<double> v = *s;
    std::sort(v.begin(), v.end());
    const double med = v[v.size() / 2];
    double dev = 0.0;
    for (double t : v) dev = std::max(dev, std::abs(t - med) / med);
    if (cores == 1)
      dev1 = dev;
    else
      devmax = dev;
  }
  std::printf("\nshape checks:\n");
  if (fig5_cores().size() > 1) {
    print_shape_check("1-core runs vary less than multi-core runs (no scheduler)",
                      dev1 <= devmax + 0.01);
    print_shape_check("multi-core variation is moderate (< 25% of median)", devmax < 0.25);
  } else {
    std::printf("  (single core available: distribution comparison degenerate)\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  return run_benchmarks(argc, argv, summary);
}
