/// \file fig6_dims.cpp
/// Figure 6 (right): Odd-Even speedups for problems of different shapes:
/// tiny states/huge k (n=6), the balanced case (n=48), and large states with
/// a small k (paper: n=500, k=500; here n/k are scaled down by default —
/// override with PITK_N_LARGE / PITK_K_LARGE).
///
/// Paper shape: n=48 scales best (computation-to-communication ratio), n=6
/// close behind, and the large-n/small-k case scales worst (insufficient
/// parallelism in time: only k/2^level independent QRs per level).  Block
/// size 10 for the small dims, 1 for the large one, as in the paper.

#include "bench_util.hpp"

namespace {

using namespace pitk;
using namespace pitk::bench;

struct Config {
  index n;
  index k;
  index block;
};

std::vector<Config> configs() {
  return {{6, k_for_n6(), 10},
          {48, k_for_n48(), 10},
          {env_long("PITK_N_LARGE", 96), env_long("PITK_K_LARGE", 200), 1}};
}

std::string bench_name(const Config& c, unsigned cores) {
  return "Fig6R/Odd-Even/n=" + std::to_string(c.n) + "/k=" + std::to_string(c.k) +
         "/cores=" + std::to_string(cores);
}

void register_all() {
  for (const Config& c : configs()) {
    (void)workload(c.n, c.k);
    for (unsigned cores : core_sweep()) {
      benchmark::RegisterBenchmark(bench_name(c, cores).c_str(),
                                   [c, cores](benchmark::State& state) {
                                     const Workload& w = workload(c.n, c.k);
                                     par::ThreadPool pool(cores);
                                     for (auto _ : state) {
                                       benchmark::DoNotOptimize(
                                           run_variant(Variant::OddEven, w, pool, c.block));
                                     }
                                   })
          ->Unit(benchmark::kSecond)
          ->UseRealTime()
          ->Iterations(1)
          ->Repetitions(repetitions())
          ->ReportAggregatesOnly(false);
    }
  }
}

void summary(const CapturingReporter& rep) {
  std::printf("\n=== Figure 6 (right): Odd-Even speedups by problem shape ===\n");
  std::printf("%-24s", "cores");
  for (unsigned cores : core_sweep()) std::printf("%8u", cores);
  std::printf("\n");
  std::vector<double> best;
  for (const Config& c : configs()) {
    const double t1 = rep.median_seconds(bench_name(c, 1));
    char label[64];
    std::snprintf(label, sizeof label, "n=%lld k=%lld (b=%lld)", static_cast<long long>(c.n),
                  static_cast<long long>(c.k), static_cast<long long>(c.block));
    std::printf("%-24s", label);
    double mx = 0.0;
    for (unsigned cores : core_sweep()) {
      const double tc = rep.median_seconds(bench_name(c, cores));
      const double s = tc > 0.0 ? t1 / tc : 0.0;
      mx = std::max(mx, s);
      std::printf("%8.2f", s);
    }
    best.push_back(mx);
    std::printf("\n");
  }
  std::printf("\nshape checks:\n");
  if (core_sweep().back() > 1 && best.size() == 3) {
    print_shape_check("large-n/small-k scales worst (insufficient parallelism)",
                      best[2] <= std::max(best[0], best[1]) + 0.05);
  } else {
    std::printf("  (single core available: speedups degenerate)\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  return run_benchmarks(argc, argv, summary);
}
