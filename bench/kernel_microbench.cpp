/// \file kernel_microbench.cpp
/// Microbenchmarks of the la/ kernel layer: packed/blocked GEMM against the
/// naive reference, the small-dimension dispatch against the packed path on
/// Kalman-sized operands, and the blocked triangular kernels.  Emits
/// BENCH_kernels.json through the shared JSON harness; this file is the
/// measured basis for the engine's flops calibration and the repo's perf
/// trajectory.
///
///   PITK_BENCH_REPS  repetitions per configuration (default 5)
///   PITK_BENCH_OUT   output path (default BENCH_kernels.json)
///
/// Exit code covers harness health only (JSON written, kernels ran); the
/// printed shape checks are informational, not a perf gate.

#include <cstdio>
#include <vector>

#include "bench_json.hpp"
#include "la/blas.hpp"
#include "la/blas_ref.hpp"
#include "la/random.hpp"
#include "la/workspace.hpp"

namespace {

using namespace pitk;
using bench::JsonBench;
using la::index;
using la::Matrix;
using la::Trans;

double g_checksum = 0.0;  ///< defeats whole-program elision of the kernels

/// Time `fn` (called `iters` times) for each repetition.
template <class Fn>
std::vector<double> run_reps(int reps, long iters, Fn&& fn) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  fn();  // warm caches, workspace arena, branch predictors
  for (int r = 0; r < reps; ++r)
    samples.push_back(bench::time_once([&] {
      for (long i = 0; i < iters; ++i) fn();
    }) / static_cast<double>(iters));
  return samples;
}

/// Iteration count so one repetition does ~16 Mflop (short enough for CI's
/// single-rep smoke, long enough to dwarf clock granularity).
long iters_for_flops(double flops_per_call) {
  const long it = static_cast<long>(16e6 / flops_per_call);
  return it < 1 ? 1 : it;
}

struct GemmTimes {
  double naive = 0.0;
  double dispatched = 0.0;
  double packed = 0.0;
};

GemmTimes bench_gemm_size(JsonBench& out, int reps, index n) {
  la::Rng rng(0xC0FFEE + static_cast<std::uint64_t>(n));
  Matrix a = la::random_gaussian(rng, n, n);
  Matrix b = la::random_gaussian(rng, n, n);
  Matrix c(n, n);
  const double flops = 2.0 * static_cast<double>(n) * n * n;
  const long iters = iters_for_flops(flops);

  char name[64];
  GemmTimes t;

  std::snprintf(name, sizeof name, "gemm_naive_n%lld", static_cast<long long>(n));
  auto naive = run_reps(reps, iters, [&] {
    la::ref::gemm(1.0, a.view(), Trans::No, b.view(), Trans::No, 0.0, c.view());
    g_checksum += c(0, 0);
  });
  t.naive = bench::percentile(naive, 0.5);
  out.record(name, naive, {{"n", static_cast<double>(n)}, {"flops", flops},
                           {"gflops", flops / t.naive * 1e-9}});

  std::snprintf(name, sizeof name, "gemm_n%lld", static_cast<long long>(n));
  auto disp = run_reps(reps, iters, [&] {
    la::gemm(1.0, a.view(), Trans::No, b.view(), Trans::No, 0.0, c.view());
    g_checksum += c(0, 0);
  });
  t.dispatched = bench::percentile(disp, 0.5);
  out.record(name, disp, {{"n", static_cast<double>(n)}, {"flops", flops},
                          {"gflops", flops / t.dispatched * 1e-9}});

  std::snprintf(name, sizeof name, "gemm_packed_n%lld", static_cast<long long>(n));
  auto packed = run_reps(reps, iters, [&] {
    la::detail::gemm_packed(1.0, a.view(), Trans::No, b.view(), Trans::No, 0.0, c.view());
    g_checksum += c(0, 0);
  });
  t.packed = bench::percentile(packed, 0.5);
  out.record(name, packed, {{"n", static_cast<double>(n)}, {"flops", flops},
                            {"gflops", flops / t.packed * 1e-9}});

  std::printf("  n=%3lld  naive %8.3f  packed %8.3f  dispatched %8.3f GFLOP/s\n",
              static_cast<long long>(n), flops / t.naive * 1e-9, flops / t.packed * 1e-9,
              flops / t.dispatched * 1e-9);
  return t;
}

void bench_triangular(JsonBench& out, int reps) {
  la::Rng rng(0x7215);
  const index n = 48;
  Matrix t = la::random_gaussian(rng, n, n);
  for (index i = 0; i < n; ++i) t(i, i) = 2.0 + (t(i, i) < 0 ? -t(i, i) : t(i, i));
  Matrix b0 = la::random_gaussian(rng, n, n);
  Matrix b = b0;
  const double flops = static_cast<double>(n) * n * n;  // ~n^3 for trsm/trmm/syrk(half)
  const long iters = iters_for_flops(flops);

  auto trsm = run_reps(reps, iters, [&] {
    b.view().assign(b0.view());
    la::trsm_left(la::Uplo::Upper, Trans::No, la::Diag::NonUnit, t.view(), b.view());
    g_checksum += b(0, 0);
  });
  out.record("trsm_left_n48_rhs48", trsm, {{"n", 48.0}, {"flops", flops}});

  auto trmm = run_reps(reps, iters, [&] {
    b.view().assign(b0.view());
    la::trmm_left(la::Uplo::Upper, Trans::No, la::Diag::NonUnit, 1.0, t.view(), b.view());
    g_checksum += b(0, 0);
  });
  out.record("trmm_left_n48_rhs48", trmm, {{"n", 48.0}, {"flops", flops}});

  Matrix c(n, n);
  auto syrk = run_reps(reps, iters, [&] {
    la::syrk(1.0, b0.view(), Trans::No, 0.0, c.view());
    g_checksum += c(0, 0);
  });
  out.record("syrk_n48_k48", syrk, {{"n", 48.0}, {"flops", flops}});

  std::printf("  n=48 triangular: trsm %.3f  trmm %.3f  syrk %.3f us\n",
              bench::percentile(trsm, 0.5) * 1e6, bench::percentile(trmm, 0.5) * 1e6,
              bench::percentile(syrk, 0.5) * 1e6);
}

void print_check(const char* what, bool ok) {
  std::printf("  [%s] %s\n", ok ? "OK " : "???", what);
}

}  // namespace

int main() {
  const int reps = bench::json_repetitions();
  JsonBench out("BENCH_kernels.json");
  std::printf("kernel microbench (%d repetitions per configuration)\n", reps);

  std::printf("square GEMM, single thread:\n");
  const std::vector<index> sizes = {2, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96};
  double small_vs_packed_worst = 1e9;
  double packed_vs_naive_64 = 0.0;
  for (index n : sizes) {
    const GemmTimes t = bench_gemm_size(out, reps, n);
    if (n <= 8) small_vs_packed_worst = std::min(small_vs_packed_worst, t.packed / t.dispatched);
    if (n == 64) packed_vs_naive_64 = t.naive / t.packed;
  }

  std::printf("blocked triangular kernels:\n");
  bench_triangular(out, reps);

  std::printf("shape checks (informational, not a gate):\n");
  print_check("packed GEMM >= 2x naive at n = 64", packed_vs_naive_64 >= 2.0);
  std::printf("        (measured %.2fx)\n", packed_vs_naive_64);
  print_check("small-dim dispatch beats packed for every n <= 8",
              small_vs_packed_worst > 1.0);
  std::printf("        (worst small-vs-packed speedup %.2fx)\n", small_vs_packed_worst);

  out.record("meta_checksum", {0.0}, {{"checksum", g_checksum}});
  if (!out.write()) return 1;
  return 0;
}
