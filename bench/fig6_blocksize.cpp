/// \file fig6_blocksize.cpp
/// Figure 6 (left): Odd-Even running time on all cores as a function of the
/// parallel_for block-size (grain) parameter, n = 6.
///
/// Paper shape to reproduce: performance is flat for block sizes from 1 up
/// to about 1,000, then degrades once blocks are so large that there is not
/// enough parallelism left (>= 5,000 at the paper's k; the knee scales with
/// k / cores).

#include "bench_util.hpp"

namespace {

using namespace pitk;
using namespace pitk::bench;

index fig6_k() { return k_for_n6(); }

std::vector<index> block_sizes() {
  std::vector<index> sizes;
  for (index b = 1; b <= 1000000; b *= 10) sizes.push_back(b);
  return sizes;
}

std::string bench_name(index block) {
  return "Fig6L/Odd-Even/n=6/k=" + std::to_string(fig6_k()) + "/block=" + std::to_string(block);
}

void register_all() {
  (void)workload(6, fig6_k());
  const unsigned cores = core_sweep().back();
  for (index block : block_sizes()) {
    benchmark::RegisterBenchmark(bench_name(block).c_str(),
                                 [block, cores](benchmark::State& state) {
                                   const Workload& w = workload(6, fig6_k());
                                   par::ThreadPool pool(cores);
                                   for (auto _ : state) {
                                     benchmark::DoNotOptimize(
                                         run_variant(Variant::OddEven, w, pool, block));
                                   }
                                 })
        ->Unit(benchmark::kSecond)
        ->UseRealTime()
        ->Iterations(1)
        ->Repetitions(repetitions())
        ->ReportAggregatesOnly(false);
  }
}

void summary(const CapturingReporter& rep) {
  const unsigned cores = core_sweep().back();
  std::printf("\n=== Figure 6 (left): Odd-Even time vs parallel_for block size "
              "(n=6, k=%lld, %u cores) ===\n",
              static_cast<long long>(fig6_k()), cores);
  std::printf("%-12s %10s\n", "block", "median(s)");
  double small_best = 1e300;
  double huge = 0.0;
  for (index block : block_sizes()) {
    const double t = rep.median_seconds(bench_name(block));
    std::printf("%-12lld %10.3f\n", static_cast<long long>(block), t);
    if (block <= 1000) small_best = std::min(small_best, t);
    if (block >= fig6_k()) huge = t;  // block >= k: a single chunk, serial
  }
  std::printf("\nshape checks:\n");
  if (cores > 1) {
    print_shape_check("small blocks (<= 1000) outperform one-chunk execution",
                      small_best < huge);
  } else {
    std::printf("  (single core available: block size has no effect)\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  return run_benchmarks(argc, argv, summary);
}
