/// \file table1_overhead.cpp
/// "Table 1" — the single-core work-overhead ratios reported in the text of
/// Section 5.4:
///
///   Odd-Even    vs Paige-Saunders     : 1.8 - 2.5x   (with covariances)
///   Odd-Even-NC vs Paige-Saunders-NC  : 1.8 - 2.0x
///   Associative vs Kalman (RTS)       : 1.8 - 2.7x
///
/// The parallel-in-time algorithms perform more arithmetic than their
/// sequential counterparts by a constant factor; this binary measures those
/// factors on 1 core for both Section 5.2 workloads.

#include "bench_util.hpp"

namespace {

using namespace pitk;
using namespace pitk::bench;

struct Config {
  index n;
  index k;
};

std::vector<Config> configs() { return {{6, k_for_n6()}, {48, k_for_n48()}}; }

std::string bench_name(Variant v, const Config& c) {
  return std::string("Table1/") + variant_name(v) + "/n=" + std::to_string(c.n) +
         "/k=" + std::to_string(c.k);
}

constexpr Variant kAll[] = {Variant::OddEven,       Variant::OddEvenNC,
                            Variant::Associative,   Variant::PaigeSaunders,
                            Variant::PaigeSaundersNC, Variant::Kalman};

void register_all() {
  for (const Config& c : configs()) {
    (void)workload(c.n, c.k);
    for (Variant v : kAll) {
      benchmark::RegisterBenchmark(bench_name(v, c).c_str(),
                                   [v, c](benchmark::State& state) {
                                     const Workload& w = workload(c.n, c.k);
                                     par::ThreadPool pool(1);  // 1 core: pure work
                                     for (auto _ : state) {
                                       benchmark::DoNotOptimize(
                                           run_variant(v, w, pool, par::default_grain));
                                     }
                                   })
          ->Unit(benchmark::kSecond)
          ->UseRealTime()
          ->Iterations(1)
          ->Repetitions(repetitions())
          ->ReportAggregatesOnly(false);
    }
  }
}

void summary(const CapturingReporter& rep) {
  std::printf("\n=== Table 1: single-core work overhead of parallel-in-time algorithms ===\n");
  std::printf("%-44s %-10s %-10s %-8s %s\n", "ratio", "n=6", "n=48", "paper", "");
  struct Row {
    const char* label;
    Variant num;
    Variant den;
    double paper_lo;
    double paper_hi;
  };
  const Row rows[] = {
      {"Odd-Even / Paige-Saunders", Variant::OddEven, Variant::PaigeSaunders, 1.8, 2.5},
      {"Odd-Even-NC / Paige-Saunders-NC", Variant::OddEvenNC, Variant::PaigeSaundersNC, 1.8, 2.0},
      {"Associative / Kalman", Variant::Associative, Variant::Kalman, 1.8, 2.7},
  };
  bool all_overhead = true;
  for (const Row& r : rows) {
    double ratio[2] = {0.0, 0.0};
    int idx = 0;
    for (const Config& c : configs()) {
      const double num = rep.median_seconds(bench_name(r.num, c));
      const double den = rep.median_seconds(bench_name(r.den, c));
      ratio[idx++] = den > 0.0 ? num / den : 0.0;
    }
    std::printf("%-44s %-10.2f %-10.2f %.1f-%.1fx\n", r.label, ratio[0], ratio[1], r.paper_lo,
                r.paper_hi);
    for (double q : ratio) all_overhead = all_overhead && q > 1.0;
  }
  std::printf("\nshape checks:\n");
  print_shape_check("every parallel algorithm does more work than its sequential baseline",
                    all_overhead);
  std::printf("  (absolute ratios depend on the kernel substitution; the paper's "
              "MKL/ARMPL-backed blocks shift constants)\n");
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  return run_benchmarks(argc, argv, summary);
}
